// QoS-aware hierarchical service routing — the paper's §7 future work:
// "How to embed QoS (e.g., network bandwidth, machine load, machine
// volatility) into hierarchical service topologies, and properly
// aggregate those pieces of information into meaningful service routing
// state, are important issues."
//
// Model: every proxy has a machine capacity; a session consumes `demand`
// units on each *distinct* proxy that runs at least one of its services
// (a machine slot per session, not per service instance — this makes the
// per-(node, service) admission filter exact even when the router maps
// several consecutive services onto one proxy). The hierarchical
// level sees one aggregate capacity figure per cluster, computed by a
// configurable aggregation policy:
//   kOptimistic  — the cluster advertises its best member (max residual);
//                  admits aggressively, may need crankback when the CSP's
//                  promise does not hold for a concrete service;
//   kPessimistic — the cluster advertises its worst member (min residual);
//                  never cranks back but rejects sessions the system could
//                  in fact carry.
// This is exactly the precision/state tension the paper discusses for
// topology aggregation (§3, [20]), replayed for QoS state.
//
// `QosManager` implements session admission control on top of
// HierarchicalServiceRouter::route_with_crankback: route under capacity
// filters, then reserve capacity along the chosen path; `release` returns
// it when a session ends.
#pragma once

#include <cstddef>
#include <vector>

#include "overlay/hfc_topology.h"
#include "overlay/overlay_network.h"
#include "routing/hierarchical_router.h"
#include "routing/service_path.h"

namespace hfc {

enum class CapacityAggregation {
  kOptimistic,   ///< advertise max residual capacity over members
  kPessimistic,  ///< advertise min residual capacity over members
};

class QosManager {
 public:
  /// `capacities[p]` is proxy p's total machine capacity. References must
  /// outlive the manager. Throws on size mismatch or negative capacity.
  QosManager(const OverlayNetwork& net, const HfcTopology& topo,
             std::vector<double> capacities,
             CapacityAggregation aggregation);

  [[nodiscard]] double residual(NodeId node) const;
  /// The cluster's advertised aggregate residual under the configured
  /// aggregation policy.
  [[nodiscard]] double aggregate_residual(ClusterId cluster) const;

  /// Feasibility filters for a session that consumes `demand` capacity
  /// units per placed service. The returned filters reference this
  /// manager; keep it alive while routing.
  [[nodiscard]] RoutingFilters filters(double demand) const;

  struct Admission {
    bool admitted = false;
    ServicePath path;
    std::size_t crankbacks = 0;
  };
  /// Route `request` under capacity constraints and, on success, reserve
  /// `demand` units on every proxy per service instance it runs.
  [[nodiscard]] Admission admit(const HierarchicalServiceRouter& router,
                                const ServiceRequest& request, double demand);

  /// Reserve `demand` units on every proxy that runs a service of `path`
  /// (what admit() does after routing succeeds). Exposed so externally
  /// routed paths (e.g. a flat-state reference router) can participate in
  /// the same capacity bookkeeping. Throws if a reservation would drive a
  /// residual negative.
  void reserve(const ServicePath& path, double demand);

  /// Return the capacity a previously admitted path reserved. The path
  /// must have been admitted with the same demand.
  void release(const ServicePath& path, double demand);

  /// Node-list bookkeeping for long-lived tree edges (src/streaming):
  /// a streaming member's uplink consumes `demand` units on every
  /// *distinct* proxy of `nodes` — relays forward the stream, so unlike
  /// the per-session path API they are not free. Duplicates in `nodes`
  /// are collapsed before reserving, mirroring the distinct-proxy rule.
  /// `feasible_nodes` is the admission probe: true iff every distinct
  /// proxy still has `demand` residual. `release_nodes` must be called
  /// with the same list that was reserved.
  [[nodiscard]] bool feasible_nodes(const std::vector<NodeId>& nodes,
                                    double demand) const;
  void reserve_nodes(const std::vector<NodeId>& nodes, double demand);
  void release_nodes(const std::vector<NodeId>& nodes, double demand);

  /// Total capacity currently reserved across all proxies.
  [[nodiscard]] double reserved_total() const;

 private:
  const OverlayNetwork& net_;
  const HfcTopology& topo_;
  std::vector<double> capacities_;  ///< residual, mutated by admit/release
  CapacityAggregation aggregation_;
  double total_capacity_ = 0.0;
};

}  // namespace hfc
