#include "qos/qos_manager.h"

#include <algorithm>
#include <limits>

#include "util/require.h"

namespace hfc {

QosManager::QosManager(const OverlayNetwork& net, const HfcTopology& topo,
                       std::vector<double> capacities,
                       CapacityAggregation aggregation)
    : net_(net),
      topo_(topo),
      capacities_(std::move(capacities)),
      aggregation_(aggregation) {
  require(capacities_.size() == net_.size(),
          "QosManager: one capacity per proxy required");
  require(topo_.node_count() == net_.size(),
          "QosManager: topology/network size mismatch");
  for (double c : capacities_) {
    require(c >= 0.0, "QosManager: negative capacity");
  }
  total_capacity_ = 0.0;
  for (double c : capacities_) total_capacity_ += c;
}

double QosManager::residual(NodeId node) const {
  require(node.valid() && node.idx() < capacities_.size(),
          "QosManager::residual: bad node");
  return capacities_[node.idx()];
}

double QosManager::aggregate_residual(ClusterId cluster) const {
  const std::vector<NodeId>& members = topo_.members(cluster);
  double best = aggregation_ == CapacityAggregation::kOptimistic
                    ? 0.0
                    : std::numeric_limits<double>::infinity();
  for (NodeId m : members) {
    const double r = capacities_[m.idx()];
    best = aggregation_ == CapacityAggregation::kOptimistic
               ? std::max(best, r)
               : std::min(best, r);
  }
  return best;
}

RoutingFilters QosManager::filters(double demand) const {
  require(demand >= 0.0, "QosManager::filters: negative demand");
  RoutingFilters f;
  f.cluster_ok = [this, demand](ClusterId c, ServiceId) {
    return aggregate_residual(c) >= demand;
  };
  f.node_ok = [this, demand](NodeId p, ServiceId) {
    return capacities_[p.idx()] >= demand;
  };
  return f;
}

QosManager::Admission QosManager::admit(
    const HierarchicalServiceRouter& router, const ServiceRequest& request,
    double demand) {
  Admission admission;
  const HierarchicalServiceRouter::RouteResult result =
      router.route_with_crankback(request, filters(demand));
  admission.crankbacks = result.crankbacks;
  if (!result.path.found) return admission;
  admission.admitted = true;
  admission.path = result.path;
  reserve(admission.path, demand);
  return admission;
}

namespace {

/// The distinct proxies running at least one service of the path.
std::vector<NodeId> service_proxies(const ServicePath& path) {
  std::vector<NodeId> out;
  for (const ServiceHop& hop : path.hops) {
    if (!hop.is_relay()) out.push_back(hop.proxy);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

void QosManager::reserve(const ServicePath& path, double demand) {
  require(path.found, "QosManager::reserve: path not found");
  require(demand >= 0.0, "QosManager::reserve: negative demand");
  for (NodeId proxy : service_proxies(path)) {
    capacities_[proxy.idx()] -= demand;
    ensure(capacities_[proxy.idx()] >= -1e-9,
           "QosManager::reserve: reservation drove capacity negative");
  }
}

void QosManager::release(const ServicePath& path, double demand) {
  require(path.found, "QosManager::release: path was never admitted");
  require(demand >= 0.0, "QosManager::release: negative demand");
  for (NodeId proxy : service_proxies(path)) {
    capacities_[proxy.idx()] += demand;
  }
}

namespace {

std::vector<NodeId> distinct_nodes(const std::vector<NodeId>& nodes) {
  std::vector<NodeId> out(nodes);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

bool QosManager::feasible_nodes(const std::vector<NodeId>& nodes,
                                double demand) const {
  require(demand >= 0.0, "QosManager::feasible_nodes: negative demand");
  for (NodeId proxy : distinct_nodes(nodes)) {
    require(proxy.valid() && proxy.idx() < capacities_.size(),
            "QosManager::feasible_nodes: bad node");
    if (capacities_[proxy.idx()] < demand) return false;
  }
  return true;
}

void QosManager::reserve_nodes(const std::vector<NodeId>& nodes,
                               double demand) {
  require(demand >= 0.0, "QosManager::reserve_nodes: negative demand");
  for (NodeId proxy : distinct_nodes(nodes)) {
    require(proxy.valid() && proxy.idx() < capacities_.size(),
            "QosManager::reserve_nodes: bad node");
    capacities_[proxy.idx()] -= demand;
    ensure(capacities_[proxy.idx()] >= -1e-9,
           "QosManager::reserve_nodes: reservation drove capacity negative");
  }
}

void QosManager::release_nodes(const std::vector<NodeId>& nodes,
                               double demand) {
  require(demand >= 0.0, "QosManager::release_nodes: negative demand");
  for (NodeId proxy : distinct_nodes(nodes)) {
    require(proxy.valid() && proxy.idx() < capacities_.size(),
            "QosManager::release_nodes: bad node");
    capacities_[proxy.idx()] += demand;
  }
}

double QosManager::reserved_total() const {
  double residual_sum = 0.0;
  for (double c : capacities_) residual_sum += c;
  return total_capacity_ - residual_sum;
}

}  // namespace hfc
