#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <sstream>
#include <utility>

#include "overlay/hfc_topology.h"
#include "util/env.h"
#include "util/require.h"
#include "util/rng.h"

namespace hfc {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kBurstStart:
      return "burst_start";
    case FaultKind::kBurstEnd:
      return "burst_end";
  }
  return "unknown";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events, double base_loss,
                     double jitter_ms, std::uint64_t seed)
    : events_(std::move(events)),
      base_loss_(base_loss),
      jitter_ms_(jitter_ms),
      seed_(seed) {
  require(base_loss_ >= 0.0 && base_loss_ < 1.0,
          "FaultPlan: base_loss outside [0,1)");
  require(jitter_ms_ >= 0.0, "FaultPlan: negative jitter");
  for (const FaultEvent& e : events_) {
    require(e.time_ms >= 0.0, "FaultPlan: negative event time");
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        require(e.node.valid(), "FaultPlan: crash/recover without a node");
        break;
      case FaultKind::kPartition:
      case FaultKind::kHeal:
        require(e.a.valid() && e.b.valid() && e.a != e.b,
                "FaultPlan: partition needs two distinct clusters");
        break;
      case FaultKind::kBurstStart:
        require(e.loss > 0.0 && e.loss <= 1.0,
                "FaultPlan: burst loss outside (0,1]");
        break;
      case FaultKind::kBurstEnd:
        break;
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.time_ms < y.time_ms;
                   });
}

double FaultPlan::last_event_ms() const {
  return events_.empty() ? 0.0 : events_.back().time_ms;
}

std::uint64_t FaultPlan::default_seed() {
  return env_u64("HFC_FAULT_SEED", 1);
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("HFC_FAULT_PLAN");
  if (spec == nullptr || *spec == '\0') return FaultPlan();
  return parse(spec);
}

FaultPlan FaultPlan::random(const FaultPlanParams& params,
                            const HfcTopology& topo, std::uint64_t seed) {
  require(params.horizon_ms > 0.0, "FaultPlan::random: empty horizon");
  require(params.heal_fraction > 0.0 && params.heal_fraction <= 1.0,
          "FaultPlan::random: heal_fraction outside (0,1]");
  require(params.border_bias >= 0.0 && params.border_bias <= 1.0,
          "FaultPlan::random: border_bias outside [0,1]");
  const double heal_by = params.horizon_ms * params.heal_fraction;
  std::vector<FaultEvent> events;
  Rng rng(seed);

  // Crash/recover pairs. Victims avoid repeats while enough distinct nodes
  // exist, and are biased toward border proxies — the role whose failure
  // actually degrades inter-cluster routing.
  Rng crash_rng = rng.fork(1);
  const std::vector<NodeId>& borders = topo.all_borders();
  std::vector<NodeId> used;
  for (std::size_t i = 0; i < params.crashes; ++i) {
    NodeId victim;
    for (int attempt = 0; attempt < 16; ++attempt) {
      if (!borders.empty() && crash_rng.chance(params.border_bias)) {
        victim = crash_rng.pick(borders);
      } else {
        victim = NodeId(static_cast<std::int32_t>(
            crash_rng.pick_index(topo.node_count())));
      }
      if (std::find(used.begin(), used.end(), victim) == used.end()) break;
    }
    used.push_back(victim);
    const double down_at = crash_rng.uniform_real(0.05, 0.55) * heal_by;
    double downtime = crash_rng.exponential(params.mean_downtime_ms);
    // Floor tiny draws at 1 ms, then clamp to the pre-heal window — in that
    // order, so the floor can never push the recovery past heal_by (the
    // fault-free reconvergence tail the chaos invariants rely on). down_at
    // <= 0.55 * heal_by keeps the clamped span strictly positive.
    downtime = std::min(std::max(downtime, 1.0), heal_by - down_at);
    FaultEvent crash;
    crash.time_ms = down_at;
    crash.kind = FaultKind::kCrash;
    crash.node = victim;
    events.push_back(crash);
    FaultEvent recover = crash;
    recover.time_ms = down_at + downtime;
    recover.kind = FaultKind::kRecover;
    events.push_back(recover);
  }

  // Inter-cluster partitions over the live cluster pairs.
  Rng part_rng = rng.fork(2);
  std::vector<ClusterId> live;
  for (std::size_t c = 0; c < topo.cluster_count(); ++c) {
    const ClusterId id(static_cast<std::int32_t>(c));
    if (topo.live(id)) live.push_back(id);
  }
  if (live.size() >= 2) {
    for (std::size_t i = 0; i < params.partitions; ++i) {
      const ClusterId a = part_rng.pick(live);
      ClusterId b = part_rng.pick(live);
      for (int attempt = 0; attempt < 16 && b == a; ++attempt) {
        b = part_rng.pick(live);
      }
      if (b == a) continue;  // one-cluster corner: nothing to partition
      const double cut_at = part_rng.uniform_real(0.05, 0.55) * heal_by;
      double span = part_rng.exponential(params.mean_partition_ms);
      span = std::min(std::max(span, 1.0), heal_by - cut_at);
      FaultEvent cut;
      cut.time_ms = cut_at;
      cut.kind = FaultKind::kPartition;
      cut.a = a;
      cut.b = b;
      events.push_back(cut);
      FaultEvent heal = cut;
      heal.time_ms = cut_at + span;
      heal.kind = FaultKind::kHeal;
      events.push_back(heal);
    }
  }

  // Correlated-loss windows: each burst lives in its own slot of the
  // pre-heal horizon, so windows from `random` never overlap — a plan's
  // loss level at any instant is that of the single open window.
  // (serialize() and the injector still handle overlapping windows, which
  // hand-written specs may construct.)
  Rng burst_rng = rng.fork(3);
  if (params.bursts > 0) {
    const double first_open = 0.05 * heal_by;
    const double slot = (heal_by - first_open) /
                        static_cast<double>(params.bursts);
    for (std::size_t i = 0; i < params.bursts; ++i) {
      const double slot_begin = first_open + static_cast<double>(i) * slot;
      const double open_at =
          slot_begin + burst_rng.uniform_real(0.0, 0.5) * slot;
      double span = burst_rng.exponential(params.mean_burst_ms);
      // Floor then clamp to the slot (open_at sits in the slot's first
      // half, so the clamp keeps span strictly positive and every window
      // closed by heal_by).
      span = std::min(std::max(span, 1.0), slot_begin + slot - open_at);
      FaultEvent open;
      open.time_ms = open_at;
      open.kind = FaultKind::kBurstStart;
      open.loss = params.burst_loss;
      events.push_back(open);
      FaultEvent close;
      close.time_ms = open_at + span;
      close.kind = FaultKind::kBurstEnd;
      events.push_back(close);
    }
  }

  return FaultPlan(std::move(events), params.base_loss, params.jitter_ms,
                   seed);
}

namespace {

/// Format a double (times and loss probabilities alike) with enough
/// significant digits (max_digits10 = 17) that parse() recovers the exact
/// value: serialize/parse is a lossless round-trip, which the
/// plan-equality checks of the chaos suite rely on. Round values still
/// print compactly ("500", not "500.000000").
std::string fmt_num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

double parse_double(const std::string& token, const std::string& context) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan::parse: bad number '" + token +
                                "' in '" + context + "'");
  }
  require(pos == token.size(), "FaultPlan::parse: trailing garbage in '" +
                                   context + "'");
  return v;
}

int parse_int(const std::string& token, const std::string& context) {
  const double v = parse_double(token, context);
  require(v >= 0.0 && v == std::floor(v),
          "FaultPlan::parse: '" + context + "' needs a non-negative integer");
  return static_cast<int>(v);
}

}  // namespace

std::string FaultPlan::serialize() const {
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ";";
    first = false;
  };
  // Bursts serialize as burst@open+span:loss. An end event carries no
  // identity, so it is paired with the OLDEST still-open window (FIFO in
  // time-sorted order). Windows may overlap or nest — hand-written specs
  // can interleave starts and ends freely — and any pairing reproduces
  // the identical event multiset on parse; the injector matches ends the
  // same way.
  std::deque<std::pair<double, double>> open_bursts;  // (open time, loss)
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        sep();
        os << (e.kind == FaultKind::kCrash ? "crash@" : "recover@")
           << fmt_num(e.time_ms) << ":" << e.node.value();
        break;
      case FaultKind::kPartition:
      case FaultKind::kHeal:
        sep();
        os << (e.kind == FaultKind::kPartition ? "partition@" : "heal@")
           << fmt_num(e.time_ms) << ":" << e.a.value() << "/" << e.b.value();
        break;
      case FaultKind::kBurstStart:
        open_bursts.emplace_back(e.time_ms, e.loss);
        break;
      case FaultKind::kBurstEnd:
        ensure(!open_bursts.empty(),
               "FaultPlan::serialize: unmatched burst end");
        sep();
        os << "burst@" << fmt_num(open_bursts.front().first) << "+"
           << fmt_num(e.time_ms - open_bursts.front().first) << ":"
           << fmt_num(open_bursts.front().second);
        open_bursts.pop_front();
        break;
    }
  }
  ensure(open_bursts.empty(), "FaultPlan::serialize: unmatched burst start");
  if (base_loss_ > 0.0) {
    sep();
    os << "loss:" << fmt_num(base_loss_);
  }
  if (jitter_ms_ > 0.0) {
    sep();
    os << "jitter:" << fmt_num(jitter_ms_);
  }
  sep();
  os << "seed:" << seed_;
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  std::vector<FaultEvent> events;
  double base_loss = 0.0;
  double jitter = 0.0;
  std::uint64_t seed = 1;

  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ';')) {
    // Trim surrounding whitespace so hand-written specs can breathe.
    const std::size_t b = token.find_first_not_of(" \t\n");
    if (b == std::string::npos) continue;
    const std::size_t e = token.find_last_not_of(" \t\n");
    token = token.substr(b, e - b + 1);

    const std::size_t at = token.find('@');
    const std::size_t colon = token.find(':');
    require(colon != std::string::npos,
            "FaultPlan::parse: missing ':' in '" + token + "'");
    const std::string head = token.substr(0, at == std::string::npos
                                                  ? colon
                                                  : at);
    if (head == "loss") {
      base_loss = parse_double(token.substr(colon + 1), token);
      require(base_loss >= 0.0 && base_loss < 1.0,
              "FaultPlan::parse: loss outside [0,1) in '" + token + "'");
      continue;
    }
    if (head == "jitter") {
      jitter = parse_double(token.substr(colon + 1), token);
      require(jitter >= 0.0, "FaultPlan::parse: negative jitter");
      continue;
    }
    if (head == "seed") {
      // Full-u64 path: serialize() writes the seed verbatim, and a seed
      // (e.g. from HFC_FAULT_SEED) can exceed both INT_MAX (UB through the
      // parse_int cast) and 2^53 (silent precision loss through double).
      const std::string raw = token.substr(colon + 1);
      const char* why = "";
      if (!parse_u64(raw.c_str(), seed, why)) {
        throw std::invalid_argument("FaultPlan::parse: bad seed in '" +
                                    token + "' (" + why + ")");
      }
      continue;
    }
    require(at != std::string::npos && at < colon,
            "FaultPlan::parse: expected '<kind>@<time>:...' in '" + token +
                "'");
    const std::string time_part = token.substr(at + 1, colon - at - 1);
    const std::string arg = token.substr(colon + 1);
    if (head == "crash" || head == "recover") {
      FaultEvent ev;
      ev.time_ms = parse_double(time_part, token);
      ev.kind = head == "crash" ? FaultKind::kCrash : FaultKind::kRecover;
      ev.node = NodeId(parse_int(arg, token));
      events.push_back(ev);
    } else if (head == "partition" || head == "heal") {
      const std::size_t slash = arg.find('/');
      require(slash != std::string::npos,
              "FaultPlan::parse: expected 'a/b' clusters in '" + token + "'");
      FaultEvent ev;
      ev.time_ms = parse_double(time_part, token);
      ev.kind = head == "partition" ? FaultKind::kPartition : FaultKind::kHeal;
      ev.a = ClusterId(parse_int(arg.substr(0, slash), token));
      ev.b = ClusterId(parse_int(arg.substr(slash + 1), token));
      events.push_back(ev);
    } else if (head == "burst") {
      const std::size_t plus = time_part.find('+');
      require(plus != std::string::npos,
              "FaultPlan::parse: expected 'burst@open+span:loss' in '" +
                  token + "'");
      const double open = parse_double(time_part.substr(0, plus), token);
      const double span = parse_double(time_part.substr(plus + 1), token);
      require(span > 0.0, "FaultPlan::parse: burst span must be positive");
      FaultEvent start;
      start.time_ms = open;
      start.kind = FaultKind::kBurstStart;
      start.loss = parse_double(arg, token);
      events.push_back(start);
      FaultEvent end;
      end.time_ms = open + span;
      end.kind = FaultKind::kBurstEnd;
      events.push_back(end);
    } else {
      throw std::invalid_argument("FaultPlan::parse: unknown directive '" +
                                  head + "'");
    }
  }
  return FaultPlan(std::move(events), base_loss, jitter, seed);
}

}  // namespace hfc
