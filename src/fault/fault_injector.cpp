#include "fault/fault_injector.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "overlay/hfc_topology.h"
#include "util/require.h"

namespace hfc {

namespace {

/// Registry handles for everything the injector does, resolved once.
struct FaultMetrics {
  obs::Counter& crashes;
  obs::Counter& recoveries;
  obs::Counter& partitions;
  obs::Counter& heals;
  obs::Counter& bursts;
  obs::Counter& dropped_loss;       ///< base + burst loss drops
  obs::Counter& dropped_partition;  ///< cross-partition drops
  obs::Counter& dropped_down;       ///< sender/receiver-down drops
  obs::Counter& jittered;           ///< messages given extra delay
  obs::Gauge& jitter_ms_total;

  static FaultMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static FaultMetrics m{
        reg.counter("fault.crashes"),
        reg.counter("fault.recoveries"),
        reg.counter("fault.partitions"),
        reg.counter("fault.heals"),
        reg.counter("fault.bursts"),
        reg.counter("fault.dropped_loss"),
        reg.counter("fault.dropped_partition"),
        reg.counter("fault.dropped_down"),
        reg.counter("fault.jittered"),
        reg.gauge("fault.jitter_ms_total"),
    };
    return m;
  }
};

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, const HfcTopology& topo)
    : plan_(std::move(plan)),
      topo_(topo),
      msg_rng_(Rng(plan_.seed()).fork(0x0fa1u)) {}

std::uint64_t FaultInjector::pair_key(ClusterId a, ClusterId b) {
  const std::uint64_t lo =
      static_cast<std::uint64_t>(std::min(a.value(), b.value()));
  const std::uint64_t hi =
      static_cast<std::uint64_t>(std::max(a.value(), b.value()));
  return (hi << 32) | lo;
}

bool FaultInjector::partitioned(ClusterId a, ClusterId b) const {
  if (!a.valid() || !b.valid() || a == b) return false;
  return partitions_.find(pair_key(a, b)) != partitions_.end();
}

std::function<bool(NodeId)> FaultInjector::up_predicate() const {
  return [this](NodeId node) { return node_up(node); };
}

void FaultInjector::apply(Simulator&, const FaultEvent& event) {
  FaultMetrics& m = FaultMetrics::get();
  switch (event.kind) {
    case FaultKind::kCrash:
      if (crashed_.insert(event.node).second) {
        m.crashes.add(1);
        if (on_crash_) on_crash_(event.node);
      }
      break;
    case FaultKind::kRecover:
      if (crashed_.erase(event.node) > 0) {
        m.recoveries.add(1);
        if (on_recover_) on_recover_(event.node);
      }
      break;
    case FaultKind::kPartition:
      if (partitions_.insert(pair_key(event.a, event.b)).second) {
        m.partitions.add(1);
        if (on_partition_) on_partition_(event.a, event.b);
      }
      break;
    case FaultKind::kHeal:
      if (partitions_.erase(pair_key(event.a, event.b)) > 0) {
        m.heals.add(1);
        if (on_heal_) on_heal_(event.a, event.b);
      }
      break;
    case FaultKind::kBurstStart:
      open_burst_losses_.push_back(event.loss);
      m.bursts.add(1);
      break;
    case FaultKind::kBurstEnd:
      // An end closes the oldest open window (ends carry no identity;
      // FaultPlan::serialize pairs them the same way), so an overlapping
      // window's loss keeps applying until its own end event.
      if (!open_burst_losses_.empty()) open_burst_losses_.pop_front();
      break;
  }
}

double FaultInjector::current_burst_loss() const {
  double loss = 0.0;
  for (const double l : open_burst_losses_) loss = std::max(loss, l);
  return loss;
}

void FaultInjector::arm(Simulator& sim) {
  require(!armed_, "FaultInjector::arm: already armed");
  armed_ = true;
  for (const FaultEvent& event : plan_.events()) {
    sim.schedule_at(event.time_ms,
                    [this, event](Simulator& s) { apply(s, event); });
  }
}

MessageFate FaultInjector::on_message(NodeId from, NodeId to) {
  FaultMetrics& m = FaultMetrics::get();
  MessageFate fate;
  if (!node_up(from)) {
    // Defensive: callers normally skip crashed senders outright.
    m.dropped_down.add(1);
    fate.delivered = false;
    return fate;
  }
  const ClusterId ca = topo_.cluster_of(from);
  const ClusterId cb = topo_.cluster_of(to);
  if (partitioned(ca, cb)) {
    m.dropped_partition.add(1);
    fate.delivered = false;
    return fate;
  }
  // One combined loss draw per message: burst windows dominate, the
  // plan-wide base loss floors it.
  const double loss =
      std::max(plan_.base_loss(), current_burst_loss());
  if (loss > 0.0 && msg_rng_.chance(loss)) {
    m.dropped_loss.add(1);
    fate.delivered = false;
    return fate;
  }
  if (plan_.jitter_ms() > 0.0) {
    fate.extra_delay_ms = msg_rng_.uniform_real(0.0, plan_.jitter_ms());
    m.jittered.add(1);
    m.jitter_ms_total.add(fate.extra_delay_ms);
  }
  return fate;
}

void FaultInjector::note_receiver_down() {
  FaultMetrics::get().dropped_down.add(1);
}

}  // namespace hfc
