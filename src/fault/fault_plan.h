// Deterministic fault schedules for the discrete-event simulator.
//
// The paper's §4 soft-state protocol claims robustness to message loss;
// a production overlay additionally loses whole proxies (crash/recover),
// whole inter-cluster links (partitions), and experiences correlated
// (burst) loss and delivery jitter. A `FaultPlan` is an explicit, fully
// ordered schedule of such events plus the plan-wide loss/jitter knobs —
// replayable bit-for-bit from a single seed, serializable to a compact
// text spec (the `HFC_FAULT_PLAN` format), and parseable back, so a chaos
// run can be pinned in a bug report as one short string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"

namespace hfc {

class HfcTopology;

enum class FaultKind {
  kCrash,       ///< proxy goes down; its soft state is lost
  kRecover,     ///< proxy comes back up with empty tables
  kPartition,   ///< all messages between two clusters are dropped
  kHeal,        ///< the partition between two clusters lifts
  kBurstStart,  ///< correlated-loss window opens (loss = `loss`)
  kBurstEnd,    ///< correlated-loss window closes
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  double time_ms = 0.0;
  FaultKind kind = FaultKind::kCrash;
  NodeId node;        ///< kCrash / kRecover
  ClusterId a, b;     ///< kPartition / kHeal (unordered pair)
  double loss = 1.0;  ///< kBurstStart: loss probability inside the window

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Knobs for `FaultPlan::random`. All windows (downtime, partitions,
/// bursts) are generated to close by `heal_fraction * horizon_ms`, so a
/// protocol run covering the full horizon always ends with a fault-free
/// tail in which soft-state refresh can reconverge.
struct FaultPlanParams {
  double horizon_ms = 8000.0;
  std::size_t crashes = 3;          ///< crash/recover pairs to schedule
  double mean_downtime_ms = 1200.0;
  /// Probability that a crash victim is drawn from the border set rather
  /// than uniformly — border failures are the interesting case (§3.3).
  double border_bias = 0.5;
  std::size_t partitions = 1;       ///< partition/heal pairs
  double mean_partition_ms = 1200.0;
  std::size_t bursts = 1;           ///< correlated-loss windows
  double mean_burst_ms = 600.0;
  double burst_loss = 0.8;
  /// Plan-wide Bernoulli loss applied to every message, on top of bursts.
  double base_loss = 0.0;
  /// Uniform extra delivery delay in [0, jitter_ms) per message.
  double jitter_ms = 0.0;
  /// Fault windows close by heal_fraction * horizon_ms.
  double heal_fraction = 0.7;
};

class FaultPlan {
 public:
  /// Events sorted by (time, insertion order). Construction sorts; the
  /// relative order of same-time events is preserved (stable).
  explicit FaultPlan(std::vector<FaultEvent> events = {},
                     double base_loss = 0.0, double jitter_ms = 0.0,
                     std::uint64_t seed = 1);

  /// Deterministic random plan: identical (params, topo, seed) triples
  /// produce identical plans, independent of thread count or call site.
  /// Crash victims avoid repeats while enough distinct nodes exist;
  /// partition pairs are drawn from the live clusters of `topo`.
  [[nodiscard]] static FaultPlan random(const FaultPlanParams& params,
                                        const HfcTopology& topo,
                                        std::uint64_t seed);

  /// Parse the HFC_FAULT_PLAN text format (see serialize); throws
  /// std::invalid_argument with a position hint on malformed input.
  ///
  ///   crash@500:3;recover@1700:3;partition@800:0/2;heal@2100:0/2;
  ///   burst@900+400:0.8;loss:0.05;jitter:2.5;seed:42
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Compact text form, parseable by `parse`. Equal plans serialize to
  /// equal strings — the chaos suite's schedule-determinism check.
  [[nodiscard]] std::string serialize() const;

  /// Seed for random plans when the caller has no opinion: HFC_FAULT_SEED
  /// (default 1).
  [[nodiscard]] static std::uint64_t default_seed();

  /// The HFC_FAULT_PLAN environment knob: parse the spec when set and
  /// non-empty (throws std::invalid_argument on a malformed one),
  /// otherwise an empty plan (no faults).
  [[nodiscard]] static FaultPlan from_env();

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] double base_loss() const { return base_loss_; }
  [[nodiscard]] double jitter_ms() const { return jitter_ms_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// Time of the last scheduled event (0 for an empty plan).
  [[nodiscard]] double last_event_ms() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
  double base_loss_ = 0.0;
  double jitter_ms_ = 0.0;
  /// Seeds the injector's message-level randomness (loss draws, jitter).
  std::uint64_t seed_ = 1;
};

}  // namespace hfc
