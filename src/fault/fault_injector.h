// Executes a FaultPlan against a discrete-event simulation.
//
// The injector is the single seam between a fault schedule and the things
// it breaks: it arms the plan's events onto a `Simulator`, tracks which
// proxies are down and which cluster pairs are partitioned, and decides
// the fate of every protocol message (drop due to partition, correlated
// burst loss, plan-wide base loss; extra delivery jitter). All message-
// level randomness derives from the plan's seed, and the simulator is
// single-threaded, so a given (plan, workload) pair replays bit-for-bit.
//
// Everything the injector does is surfaced through the metrics registry
// under the "fault." prefix (see DESIGN.md §10 for the full table).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "fault/fault_plan.h"
#include "sim/event_queue.h"
#include "util/ids.h"
#include "util/rng.h"

namespace hfc {

class HfcTopology;

/// Fate of one message, decided at send time. A dropped message is never
/// scheduled; a delivered one arrives after its normal delay plus
/// `extra_delay_ms` of jitter.
struct MessageFate {
  bool delivered = true;
  double extra_delay_ms = 0.0;
};

class FaultInjector {
 public:
  /// The topology is only consulted for cluster membership when checking
  /// partitions; it must outlive the injector and may mutate under churn
  /// (a node's current cluster is looked up per message).
  FaultInjector(FaultPlan plan, const HfcTopology& topo);

  /// Schedule every plan event onto `sim`. Call once, before running the
  /// sim; crash/recover state then evolves as the sim clock advances.
  void arm(Simulator& sim);

  /// Liveness "now" (as of the armed simulator's clock).
  [[nodiscard]] bool node_up(NodeId node) const {
    return crashed_.find(node) == crashed_.end();
  }
  [[nodiscard]] std::size_t crashed_count() const { return crashed_.size(); }
  /// A copyable predicate view of node_up, for routing filters.
  [[nodiscard]] std::function<bool(NodeId)> up_predicate() const;

  [[nodiscard]] bool partitioned(ClusterId a, ClusterId b) const;
  /// Effective correlated-loss probability right now: the max loss over
  /// all currently open burst windows (0 when none). Windows may overlap;
  /// each end event closes the oldest open window, matching serialize().
  [[nodiscard]] double current_burst_loss() const;

  /// Decide the fate of one message. Senders that are down should not call
  /// this (a crashed proxy sends nothing); if they do, the message is
  /// dropped and counted like a receiver-down drop.
  [[nodiscard]] MessageFate on_message(NodeId from, NodeId to);

  /// Record a delivery-time drop (receiver was down when the message
  /// arrived). The protocol owns that check because recovery may land
  /// between send and delivery; the injector owns the accounting.
  void note_receiver_down();

  /// Hooks fired when a crash/recover event executes (e.g. the protocol
  /// clears the victim's soft state on crash). Set before arm() fires.
  void set_on_crash(std::function<void(NodeId)> fn) {
    on_crash_ = std::move(fn);
  }
  void set_on_recover(std::function<void(NodeId)> fn) {
    on_recover_ = std::move(fn);
  }
  /// Hooks fired when a partition opens / heals between two clusters
  /// (e.g. a streaming session marks tree edges crossing the pair as
  /// interrupted). Fired only on state changes — a duplicate partition
  /// event for an already-partitioned pair stays silent, like crashes.
  void set_on_partition(std::function<void(ClusterId, ClusterId)> fn) {
    on_partition_ = std::move(fn);
  }
  void set_on_heal(std::function<void(ClusterId, ClusterId)> fn) {
    on_heal_ = std::move(fn);
  }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] static std::uint64_t pair_key(ClusterId a, ClusterId b);
  void apply(Simulator& sim, const FaultEvent& event);

  FaultPlan plan_;
  const HfcTopology& topo_;
  Rng msg_rng_;
  bool armed_ = false;
  std::unordered_set<NodeId> crashed_;
  std::unordered_set<std::uint64_t> partitions_;
  /// Loss of each open burst window, oldest first (FIFO close order).
  std::deque<double> open_burst_losses_;
  std::function<void(NodeId)> on_crash_;
  std::function<void(NodeId)> on_recover_;
  std::function<void(ClusterId, ClusterId)> on_partition_;
  std::function<void(ClusterId, ClusterId)> on_heal_;
};

}  // namespace hfc
