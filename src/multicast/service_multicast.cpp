#include "multicast/service_multicast.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "routing/hierarchical_router.h"
#include "util/require.h"

namespace hfc {

std::vector<ServiceHop> MulticastTree::branch_to(std::size_t node) const {
  require(node < nodes.size(), "MulticastTree::branch_to: bad node");
  std::vector<ServiceHop> hops;
  for (std::size_t at = node; at != TreeNode::kNoParent;
       at = nodes[at].parent) {
    hops.push_back(ServiceHop{nodes[at].proxy, nodes[at].service});
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

ServiceMulticastBuilder::ServiceMulticastBuilder(UnicastRouteFn route,
                                                 OverlayDistance distance)
    : route_(std::move(route)), distance_(std::move(distance)) {
  require(static_cast<bool>(route_), "ServiceMulticastBuilder: null router");
  require(static_cast<bool>(distance_),
          "ServiceMulticastBuilder: null distance");
}

namespace {

/// Chain of services of a linear SG, in order.
std::vector<ServiceId> linear_chain(const ServiceGraph& graph) {
  std::vector<ServiceId> chain;
  const auto configs = graph.configurations();
  if (configs.empty()) return chain;
  for (std::size_t v : configs.front()) chain.push_back(graph.label(v));
  return chain;
}

}  // namespace

MulticastTree ServiceMulticastBuilder::build(
    const MulticastRequest& request) const {
  return build(request, nullptr);
}

MulticastTree ServiceMulticastBuilder::build(
    const MulticastRequest& request,
    const std::function<bool(NodeId)>& up) const {
  require(request.source.valid(), "multicast: invalid source");
  require(!request.destinations.empty(), "multicast: no destinations");
  require(request.graph.is_linear(),
          "multicast: service graph must be linear (one configuration)");
  require(!up || up(request.source), "multicast: source is down");
  if (up) {
    for (NodeId destination : request.destinations) {
      if (!up(destination)) return MulticastTree{};
    }
  }
  const std::vector<ServiceId> chain = linear_chain(request.graph);

  MulticastTree tree;
  tree.nodes.push_back(
      MulticastTree::TreeNode{request.source, ServiceId{},
                              MulticastTree::TreeNode::kNoParent});
  tree.destination_leaf.assign(request.destinations.size(), 0);

  // applied[i] = how many chain services have been applied at tree node i
  // along its root path.
  std::vector<std::size_t> applied{0};

  // Nearest destinations first: early branches become shareable backbone.
  std::vector<std::size_t> order(request.destinations.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return distance_(request.source, request.destinations[a]) <
           distance_(request.source, request.destinations[b]);
  });

  for (std::size_t dest_index : order) {
    const NodeId destination = request.destinations[dest_index];
    // Try every distinct (proxy, applied-prefix) attach candidate and keep
    // the cheapest completion.
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_attach = 0;
    ServicePath best_path;
    std::vector<std::pair<NodeId, std::size_t>> seen;
    for (std::size_t t = 0; t < tree.nodes.size(); ++t) {
      if (up && !up(tree.nodes[t].proxy)) continue;  // down attach point
      const std::pair<NodeId, std::size_t> key{tree.nodes[t].proxy,
                                               applied[t]};
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(key);
      const std::vector<ServiceId> remaining(chain.begin() +
                                                 static_cast<long>(applied[t]),
                                             chain.end());
      const ServicePath completion =
          route_(tree.nodes[t].proxy, destination, remaining);
      if (!completion.found) continue;
      if (up && std::any_of(completion.hops.begin(), completion.hops.end(),
                            [&](const ServiceHop& hop) {
                              return !up(hop.proxy);
                            })) {
        continue;  // liveness-oblivious route fn offered a dead relay
      }
      const double cost = path_length(completion, distance_);
      if (cost < best_cost) {
        best_cost = cost;
        best_attach = t;
        best_path = completion;
      }
    }
    if (!best_path.found) return MulticastTree{};  // unsatisfiable

    // Graft the completion under the attach node (its first hop repeats
    // the attach proxy; skip it unless it applies a service there).
    std::size_t parent = best_attach;
    std::size_t parent_applied = applied[best_attach];
    for (std::size_t h = 0; h < best_path.hops.size(); ++h) {
      const ServiceHop& hop = best_path.hops[h];
      if (h == 0 && hop.is_relay()) continue;  // the attach point itself
      tree.nodes.push_back(MulticastTree::TreeNode{
          hop.proxy, hop.service, parent});
      if (!hop.is_relay()) ++parent_applied;
      applied.push_back(parent_applied);
      parent = tree.nodes.size() - 1;
    }
    tree.destination_leaf[dest_index] = parent;
  }

  tree.found = true;
  for (std::size_t t = 1; t < tree.nodes.size(); ++t) {
    const NodeId a = tree.nodes[tree.nodes[t].parent].proxy;
    const NodeId b = tree.nodes[t].proxy;
    if (a != b) tree.cost += distance_(a, b);
  }
  return tree;
}

double ServiceMulticastBuilder::unicast_total(
    const MulticastRequest& request) const {
  require(request.graph.is_linear(),
          "multicast: service graph must be linear");
  const std::vector<ServiceId> chain = linear_chain(request.graph);
  double total = 0.0;
  for (NodeId destination : request.destinations) {
    const ServicePath path = route_(request.source, destination, chain);
    if (!path.found) return std::numeric_limits<double>::infinity();
    total += path_length(path, distance_);
  }
  return total;
}

MulticastTree build_multicast_tree(const HierarchicalServiceRouter& router,
                                   OverlayDistance distance,
                                   const MulticastRequest& request,
                                   std::function<bool(NodeId)> up) {
  UnicastRouteFn route;
  if (up) {
    route = [&router, up](NodeId src, NodeId dst,
                          const std::vector<ServiceId>& chain) {
      const ServiceRequest leg{src, dst, ServiceGraph::linear(chain)};
      return router.route_degraded(leg, up).path;
    };
  } else {
    route = [&router](NodeId src, NodeId dst,
                      const std::vector<ServiceId>& chain) {
      return router.route(ServiceRequest{src, dst, ServiceGraph::linear(chain)});
    };
  }
  const ServiceMulticastBuilder builder(std::move(route), std::move(distance));
  return builder.build(request, up);
}

bool tree_satisfies(const MulticastTree& tree, const MulticastRequest& request,
                    const OverlayNetwork& net) {
  if (!tree.found) return false;
  if (tree.nodes.empty() || tree.nodes.front().proxy != request.source) {
    return false;
  }
  std::vector<ServiceId> chain;
  {
    const auto configs = request.graph.configurations();
    if (configs.size() != 1 && !request.graph.empty()) return false;
    if (!configs.empty()) {
      for (std::size_t v : configs.front()) {
        chain.push_back(request.graph.label(v));
      }
    }
  }
  if (tree.destination_leaf.size() != request.destinations.size()) {
    return false;
  }
  for (std::size_t d = 0; d < request.destinations.size(); ++d) {
    const auto branch = tree.branch_to(tree.destination_leaf[d]);
    if (branch.empty() || branch.back().proxy != request.destinations[d]) {
      return false;
    }
    std::vector<ServiceId> performed;
    for (const ServiceHop& hop : branch) {
      if (hop.is_relay()) continue;
      if (!net.hosts(hop.proxy, hop.service)) return false;
      performed.push_back(hop.service);
    }
    if (performed != chain) return false;
  }
  return true;
}

}  // namespace hfc
