// Service multicast trees over the HFC overlay.
//
// The paper's introduction motivates service overlays with multimedia
// delivery, and its reference line ([3] mc-SPF, [6] "On Construction of
// Service Multicast Trees") extends service routing to one-source,
// many-destination sessions: every destination must receive the stream
// after the full service chain has been applied, and tree branches may
// share the upstream, already-processed portion of the path.
//
// This module builds such trees greedily on top of any unicast service
// router: destinations are attached nearest-first; each new destination
// grafts onto the existing tree node whose *applied service prefix*
// leaves the cheapest completion (the remaining chain suffix routed by
// the unicast router from that node).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "overlay/overlay_network.h"
#include "routing/service_path.h"
#include "services/service_graph.h"
#include "util/ids.h"

namespace hfc {

/// One-to-many service request. The service graph must be linear (one
/// configuration): branching SGs would let different destinations receive
/// differently-processed streams.
struct MulticastRequest {
  NodeId source;
  std::vector<NodeId> destinations;
  ServiceGraph graph;
};

/// A service multicast tree. Nodes form a forest rooted at node 0 (the
/// source); each node records the proxy, the service applied there (or
/// invalid for relays) and its parent index.
struct MulticastTree {
  struct TreeNode {
    NodeId proxy;
    ServiceId service;  ///< invalid => relay
    std::size_t parent = kNoParent;
    static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  };
  bool found = false;
  std::vector<TreeNode> nodes;
  /// destination_leaf[i] = tree node index delivering to destinations[i].
  std::vector<std::size_t> destination_leaf;
  /// Sum of edge lengths under the builder's decision metric.
  double cost = 0.0;

  /// The root-to-node proxy/service hop sequence (for validation).
  [[nodiscard]] std::vector<ServiceHop> branch_to(std::size_t node) const;
};

/// Unicast routing callback: full service path from src to dst through a
/// linear chain (empty chain = relay-only path). Must return found=false
/// only when some service has no provider.
using UnicastRouteFn = std::function<ServicePath(
    NodeId src, NodeId dst, const std::vector<ServiceId>& chain)>;

class ServiceMulticastBuilder {
 public:
  /// `route` is typically a wrapper over HierarchicalServiceRouter (or the
  /// flat router for baselines); `distance` is the decision metric used
  /// to order destinations and account tree cost.
  ServiceMulticastBuilder(UnicastRouteFn route, OverlayDistance distance);

  /// Build the tree. Throws on a non-linear SG, an invalid source, or an
  /// empty destination list. Returns found=false when the chain cannot be
  /// satisfied for some destination.
  [[nodiscard]] MulticastTree build(const MulticastRequest& request) const;

  /// Liveness-aware build: proxies rejected by `up` can neither attach
  /// nor appear on any branch. Attach candidates at down tree nodes are
  /// skipped, and a completion whose hops include a down proxy is
  /// discarded even if the route callback offered it — so a liveness-
  /// oblivious route fn degrades to found=false instead of silently
  /// producing a tree that relays through crashed proxies. Throws if the
  /// source is down; returns found=false when any destination is down.
  /// A null `up` is the plain build().
  [[nodiscard]] MulticastTree build(const MulticastRequest& request,
                                    const std::function<bool(NodeId)>& up)
      const;

  /// Sum of independent unicast path costs for the same request — the
  /// no-sharing baseline the tree is compared against.
  [[nodiscard]] double unicast_total(const MulticastRequest& request) const;

 private:
  UnicastRouteFn route_;
  OverlayDistance distance_;
};

/// Validation helper: every destination's branch applies exactly the
/// request's service chain, in order, on hosting proxies.
[[nodiscard]] bool tree_satisfies(const MulticastTree& tree,
                                  const MulticastRequest& request,
                                  const OverlayNetwork& net);

class HierarchicalServiceRouter;

/// One-shot tree over the hierarchical router. With a liveness predicate
/// the unicast legs go through route_degraded — crashed proxies neither
/// serve nor relay and border pairs fall back to surviving ones — and the
/// builder additionally refuses down attach points (see the build()
/// overload above). A null `up` routes over the full proxy set. The
/// router must outlive the call; `distance` is the decision metric.
[[nodiscard]] MulticastTree build_multicast_tree(
    const HierarchicalServiceRouter& router, OverlayDistance distance,
    const MulticastRequest& request,
    std::function<bool(NodeId)> up = nullptr);

}  // namespace hfc
