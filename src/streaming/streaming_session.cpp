#include "streaming/streaming_session.h"

#include <algorithm>
#include <cstdlib>
#include <ios>
#include <limits>
#include <sstream>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "services/service_graph.h"
#include "util/env.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace hfc {

namespace {

/// Registry handles for everything the session reports, resolved once.
struct StreamMetrics {
  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& rejected;          ///< joins/regrafts left detached
  obs::Counter& regrafts;
  obs::Counter& repair_failures;   ///< repair-pass orphans with no feasible attach
  obs::Counter& breaks_crash;      ///< edges broken by a crash or a leave
  obs::Counter& breaks_partition;  ///< edges broken by a partition
  obs::Counter& restores;          ///< edges revived in place (recover/heal)
  obs::Counter& ticks_expected;
  obs::Counter& ticks_delivered;
  obs::Histogram& repair_latency_ms;
  obs::Histogram& interruption_ms;

  static StreamMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static const std::vector<double> bounds{1.0,   2.0,   5.0,   10.0,
                                            25.0,  50.0,  100.0, 250.0,
                                            500.0, 1000.0, 2500.0};
    static StreamMetrics m{
        reg.counter("stream.joins"),
        reg.counter("stream.leaves"),
        reg.counter("stream.rejected"),
        reg.counter("stream.regrafts"),
        reg.counter("stream.repair_failures"),
        reg.counter("stream.breaks_crash"),
        reg.counter("stream.breaks_partition"),
        reg.counter("stream.restores"),
        reg.counter("stream.ticks_expected"),
        reg.counter("stream.ticks_delivered"),
        reg.histogram("stream.repair_latency_ms", bounds),
        reg.histogram("stream.interruption_ms", bounds),
    };
    return m;
  }
};

void insert_sorted(std::vector<NodeId>& v, NodeId node) {
  const auto it = std::lower_bound(v.begin(), v.end(), node);
  if (it == v.end() || *it != node) v.insert(it, node);
}

void erase_sorted(std::vector<NodeId>& v, NodeId node) {
  const auto it = std::lower_bound(v.begin(), v.end(), node);
  if (it != v.end() && *it == node) v.erase(it);
}

/// The distinct proxies of hops[1..] — everything the edge claims
/// capacity on (the attach point belongs to the parent's branch).
std::vector<NodeId> edge_claim(const std::vector<ServiceHop>& hops) {
  std::vector<NodeId> out;
  for (std::size_t h = 1; h < hops.size(); ++h) out.push_back(hops[h].proxy);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string hexd(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

}  // namespace

StreamMode stream_mode_from_env() {
  const char* raw = std::getenv("HFC_STREAM_MODE");
  if (raw == nullptr) return StreamMode::kLocating;
  const std::string s(raw);
  if (s == "locating") return StreamMode::kLocating;
  if (s == "clique") return StreamMode::kClique;
  warn_env_once("HFC_STREAM_MODE", raw, "expected locating|clique",
                "locating");
  return StreamMode::kLocating;
}

StreamingSession::StreamingSession(DynamicHfcOverlay& overlay,
                                   QosManager& qos,
                                   std::vector<NodeId> sources,
                                   StreamingParams params)
    : overlay_(overlay),
      qos_(qos),
      sources_(std::move(sources)),
      params_(std::move(params)),
      tick_rng_(Rng(params_.seed).fork(0x57ea11u)) {
  require(overlay_.churn_mode() == ChurnMode::kIncremental,
          "StreamingSession: overlay must be in incremental churn mode");
  require(!sources_.empty(), "StreamingSession: no sources");
  require(params_.tick_ms > 0.0, "StreamingSession: tick_ms must be > 0");
  require(params_.repair_delay_ms > 0.0,
          "StreamingSession: repair_delay_ms must be > 0");
  require(params_.demand >= 0.0, "StreamingSession: negative demand");
  if (params_.repair_budget == 0) {
    params_.repair_budget = env_size_t("HFC_STREAM_REPAIR_BUDGET", 8);
  }
  std::vector<NodeId> dedup(sources_);
  std::sort(dedup.begin(), dedup.end());
  require(std::adjacent_find(dedup.begin(), dedup.end()) == dedup.end(),
          "StreamingSession: duplicate sources");
  trees_.reserve(sources_.size());
  for (NodeId s : sources_) {
    require(s.valid() && overlay_.is_active(s),
            "StreamingSession: source must be an active universe node");
    Tree tree;
    tree.source = s;
    trees_.push_back(std::move(tree));
  }
}

void StreamingSession::attach_injector(FaultInjector& injector) {
  require(injector_ == nullptr, "StreamingSession: injector already attached");
  injector_ = &injector;
  injector.set_on_crash([this](NodeId node) {
    require(sim_ != nullptr,
            "StreamingSession: start() must run before injector events");
    on_crash(*sim_, node);
  });
  injector.set_on_recover([this](NodeId node) {
    require(sim_ != nullptr,
            "StreamingSession: start() must run before injector events");
    on_recover(*sim_, node);
  });
  injector.set_on_partition([this](ClusterId a, ClusterId b) {
    require(sim_ != nullptr,
            "StreamingSession: start() must run before injector events");
    on_partition(*sim_, a, b);
  });
  injector.set_on_heal([this](ClusterId a, ClusterId b) {
    require(sim_ != nullptr,
            "StreamingSession: start() must run before injector events");
    on_heal(*sim_, a, b);
  });
}

void StreamingSession::start(Simulator& sim, double horizon_ms) {
  require(!started_, "StreamingSession: already started");
  require(horizon_ms > 0.0, "StreamingSession: horizon must be > 0");
  started_ = true;
  sim_ = &sim;
  horizon_ms_ = horizon_ms;
  const auto ticks =
      static_cast<std::size_t>(horizon_ms / params_.tick_ms);
  for (std::size_t i = 1; i <= ticks; ++i) {
    sim.schedule_at(static_cast<double>(i) * params_.tick_ms,
                    [this](Simulator& s) { tick(s); });
  }
  sim.schedule_at(horizon_ms, [this](Simulator& s) { finish(s); });
  log_event(sim.now(), "start horizon=" + hexd(horizon_ms));
}

// ---------------------------------------------------------------------------
// Small state helpers.

bool StreamingSession::node_up(NodeId node) const {
  // The universe router spans inactive (departed) proxies too, so the
  // active check keeps regrafts off nodes that left through churn.
  if (!overlay_.is_active(node)) return false;
  return injector_ == nullptr || injector_->node_up(node);
}

bool StreamingSession::edge_alive(const Edge& edge) const {
  if (edge.hops.empty()) return false;
  for (const ServiceHop& hop : edge.hops) {
    if (!node_up(hop.proxy)) return false;
  }
  if (injector_ != nullptr) {
    for (const auto& [a, b] : edge.crossings) {
      if (injector_->partitioned(a, b)) return false;
    }
  }
  return true;
}

std::uint32_t StreamingSession::parent_blocked(const Tree& tree,
                                               NodeId parent) const {
  if (parent == tree.source) return 0;
  return tree.members.at(parent).blocked;
}

std::int32_t StreamingSession::cluster_label(NodeId node) const {
  return overlay_.universe_topology().cluster_of(node).value();
}

std::vector<NodeId>& StreamingSession::children_of(Tree& tree,
                                                   NodeId parent) {
  if (parent == tree.source) return tree.source_children;
  return tree.members.at(parent).children;
}

void StreamingSession::index_edge(Tree& tree, NodeId node, const Edge& edge,
                                  bool add) {
  for (const ServiceHop& hop : edge.hops) {
    if (add) {
      insert_sorted(tree.by_proxy[hop.proxy], node);
    } else {
      const auto it = tree.by_proxy.find(hop.proxy);
      if (it == tree.by_proxy.end()) continue;
      erase_sorted(it->second, node);
      if (it->second.empty()) tree.by_proxy.erase(it);
    }
  }
}

void StreamingSession::bump_subtree(Simulator& sim, Tree& tree, NodeId node,
                                    std::int64_t delta) {
  if (delta == 0) return;
  StreamMetrics& m = StreamMetrics::get();
  std::vector<NodeId> stack{node};
  while (!stack.empty()) {
    const NodeId at = stack.back();
    stack.pop_back();
    Member& member = tree.members.at(at);
    const std::uint32_t old = member.blocked;
    const std::int64_t next = static_cast<std::int64_t>(old) + delta;
    require(next >= 0, "StreamingSession: blocked count went negative");
    member.blocked = static_cast<std::uint32_t>(next);
    if (old == 0 && member.blocked > 0) {
      member.interrupted_since = sim.now();
    } else if (old > 0 && member.blocked == 0) {
      if (member.interrupted_since >= 0.0) {
        m.interruption_ms.observe(sim.now() - member.interrupted_since);
      }
      member.interrupted_since = -1.0;
    }
    for (NodeId child : member.children) stack.push_back(child);
  }
}

void StreamingSession::mark_edge_broken(Simulator& sim, Tree& tree,
                                        NodeId node, bool wants_repair) {
  Member& member = tree.members.at(node);
  if (member.edge.ok) {
    member.edge.ok = false;
    member.edge.broke_at = sim.now();
    bump_subtree(sim, tree, node, +1);
  }
  if (wants_repair) member.edge.wants_repair = true;
}

void StreamingSession::try_restore_edge(Simulator& sim, Tree& tree,
                                        NodeId node) {
  Member& member = tree.members.at(node);
  if (member.edge.ok || !edge_alive(member.edge)) return;
  member.edge.ok = true;
  member.edge.wants_repair = false;
  StreamMetrics::get().restores.add(1);
  bump_subtree(sim, tree, node, -1);
  log_event(sim.now(), "restore m=" + std::to_string(node.value()));
}

// ---------------------------------------------------------------------------
// Attach machinery (joins, leave-time regrafts, repair passes).

NodeId StreamingSession::resolve_head(Tree& tree,
                                      std::int32_t cluster) const {
  const auto ok = [&](NodeId x) {
    const auto it = tree.members.find(x);
    return it != tree.members.end() && it->second.blocked == 0 &&
           it->second.cluster == cluster && node_up(x);
  };
  const auto hit = tree.head.find(cluster);
  if (hit != tree.head.end() && ok(hit->second)) return hit->second;
  const auto cit = tree.by_cluster.find(cluster);
  if (cit != tree.by_cluster.end()) {
    for (NodeId x : cit->second) {
      if (ok(x)) {
        tree.head[cluster] = x;
        return x;
      }
    }
  }
  if (hit != tree.head.end()) tree.head.erase(cluster);
  return NodeId{};
}

std::vector<StreamingSession::Candidate> StreamingSession::collect_candidates(
    Tree& tree, NodeId node, NodeId exclude) const {
  const OverlayNetwork& net = overlay_.universe_network();
  const auto eligible = [&](NodeId x) {
    if (x == node || x == exclude || !node_up(x)) return false;
    const auto it = tree.members.find(x);
    return it != tree.members.end() && it->second.blocked == 0;
  };
  const auto nearer = [&](NodeId a, NodeId b) {
    const double da = net.coord_distance(a, node);
    const double db = net.coord_distance(b, node);
    if (da != db) return da < db;
    return a < b;
  };
  const std::int32_t label = cluster_label(node);
  std::vector<NodeId> pool;
  if (params_.mode == StreamMode::kClique) {
    const NodeId head = resolve_head(tree, label);
    if (head.valid() && head != node && head != exclude) {
      // Clustered dissemination: strictly through the cluster head.
      pool.push_back(head);
    } else {
      // No eligible own-cluster head: this member attaches cross-cluster
      // (and becomes the head on success). Other heads form the backbone.
      for (const auto& [cluster, unused] : tree.by_cluster) {
        (void)unused;
        if (cluster == label) continue;
        const NodeId other = resolve_head(tree, cluster);
        if (other.valid() && other != node && other != exclude) {
          pool.push_back(other);
        }
      }
      std::sort(pool.begin(), pool.end(), nearer);
      if (pool.size() > params_.repair_budget) {
        pool.resize(params_.repair_budget);
      }
    }
  } else {
    // Locating-first: own-cluster members by coordinate distance; fall
    // back to a global scan only when the cluster offers nothing.
    const auto cit = tree.by_cluster.find(label);
    if (cit != tree.by_cluster.end()) {
      for (NodeId x : cit->second) {
        if (eligible(x)) pool.push_back(x);
      }
    }
    if (pool.empty()) {
      for (const auto& [x, member] : tree.members) {
        (void)member;
        if (eligible(x)) pool.push_back(x);
      }
    }
    std::sort(pool.begin(), pool.end(), nearer);
    if (pool.size() > params_.repair_budget) {
      pool.resize(params_.repair_budget);
    }
  }
  std::vector<Candidate> out;
  out.reserve(pool.size() + 1);
  for (NodeId x : pool) {
    if (params_.mode == StreamMode::kClique || eligible(x)) {
      out.push_back(Candidate{x, ServicePath{}, 0.0});
    }
  }
  // The source is always a candidate of last resort (first-in-tree joins,
  // head promotions) unless it is down.
  if (node_up(tree.source) && tree.source != exclude) {
    out.push_back(Candidate{tree.source, ServicePath{}, 0.0});
  }
  return out;
}

void StreamingSession::route_candidate(const HierarchicalServiceRouter& router,
                                       const Tree& tree, NodeId node,
                                       Candidate& cand,
                                       NodeId exclude) const {
  const OverlayNetwork& net = overlay_.universe_network();
  if (cand.attach != tree.source &&
      cluster_label(cand.attach) == cluster_label(node)) {
    // Intra-cluster attach: clusters are fully connected, the chain was
    // applied upstream of the attach — a direct relay edge suffices (the
    // locating step; no router refinement needed).
    cand.path.found = true;
    cand.path.hops = {ServiceHop{cand.attach, ServiceId{}},
                      ServiceHop{node, ServiceId{}}};
    cand.cost = net.coord_distance(cand.attach, node);
    cand.path.cost = cand.cost;
    return;
  }
  // Cross-cluster (or source) attach: refine through the unicast router.
  // Only a source attach still has services to place — a member attach
  // sits downstream of the full chain.
  const std::vector<ServiceId> suffix =
      cand.attach == tree.source ? params_.chain : std::vector<ServiceId>{};
  const ServiceRequest request{cand.attach, node,
                               ServiceGraph::linear(suffix)};
  const auto up = [this, exclude](NodeId x) {
    return node_up(x) && x != exclude;
  };
  cand.path = router.route_degraded(request, up).path;
  if (!cand.path.found) return;
  cand.cost = 0.0;
  for (std::size_t h = 1; h < cand.path.hops.size(); ++h) {
    cand.cost += net.coord_distance(cand.path.hops[h - 1].proxy,
                                    cand.path.hops[h].proxy);
  }
}

bool StreamingSession::apply_attach(Simulator& sim, std::size_t tree_index,
                                    NodeId node,
                                    std::vector<Candidate>& candidates) {
  Tree& tree = trees_[tree_index];
  Member& member = tree.members.at(node);
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [](const Candidate& c) {
                                    return !c.path.found;
                                  }),
                   candidates.end());
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.attach < b.attach;
            });
  // Release the old claim first so a regraft that reuses proxies of the
  // old edge sees the capacity it is about to return; restore it if no
  // candidate turns out feasible.
  const std::vector<NodeId> old_claim = member.edge.claimed;
  if (!old_claim.empty()) qos_.release_nodes(old_claim, params_.demand);
  for (Candidate& cand : candidates) {
    // Re-check eligibility: earlier applies in this pass may have
    // consumed capacity (never blocked an attach point, though — repairs
    // only unblock subtrees).
    if (cand.attach == tree.source) {
      if (!node_up(tree.source)) continue;
    } else {
      const auto it = tree.members.find(cand.attach);
      if (it == tree.members.end() || it->second.blocked != 0 ||
          !node_up(cand.attach)) {
        continue;
      }
    }
    const std::vector<NodeId> claim = edge_claim(cand.path.hops);
    if (!qos_.feasible_nodes(claim, params_.demand)) continue;
    qos_.reserve_nodes(claim, params_.demand);

    if (member.parent.valid()) {
      erase_sorted(children_of(tree, member.parent), node);
    }
    index_edge(tree, node, member.edge, /*add=*/false);

    Edge edge;
    edge.hops = std::move(cand.path.hops);
    edge.claimed = claim;
    for (std::size_t h = 1; h < edge.hops.size(); ++h) {
      const ClusterId a = overlay_.universe_topology().cluster_of(
          edge.hops[h - 1].proxy);
      const ClusterId b =
          overlay_.universe_topology().cluster_of(edge.hops[h].proxy);
      if (a.valid() && b.valid() && a != b) edge.crossings.emplace_back(a, b);
    }
    edge.ok = true;
    edge.ok = edge_alive(edge);  // a partition can break it at birth
    edge.wants_repair = false;
    edge.broke_at = edge.ok ? 0.0 : sim.now();

    const std::uint32_t new_blocked =
        parent_blocked(tree, cand.attach) + (edge.ok ? 0u : 1u);
    const std::int64_t delta = static_cast<std::int64_t>(new_blocked) -
                               static_cast<std::int64_t>(member.blocked);
    member.edge = std::move(edge);
    member.parent = cand.attach;
    insert_sorted(children_of(tree, cand.attach), node);
    index_edge(tree, node, member.edge, /*add=*/true);
    bump_subtree(sim, tree, node, delta);
    if (params_.mode == StreamMode::kClique &&
        (cand.attach == tree.source ||
         tree.members.at(cand.attach).cluster != member.cluster)) {
      tree.head[member.cluster] = node;  // cross-cluster entry point
    }
    log_event(sim.now(), "attach tree=" + std::to_string(tree_index) +
                             " m=" + std::to_string(node.value()) +
                             " parent=" + std::to_string(cand.attach.value()) +
                             " cost=" + hexd(cand.cost) +
                             (member.edge.ok ? "" : " born-broken"));
    return true;
  }
  if (!old_claim.empty()) qos_.reserve_nodes(old_claim, params_.demand);
  return false;
}

bool StreamingSession::try_attach(Simulator& sim, std::size_t tree_index,
                                  NodeId node, NodeId exclude) {
  Tree& tree = trees_[tree_index];
  std::vector<Candidate> candidates = collect_candidates(tree, node, exclude);
  const HierarchicalServiceRouter& router = overlay_.universe_router();
  for (Candidate& cand : candidates) {
    route_candidate(router, tree, node, cand, exclude);
  }
  return apply_attach(sim, tree_index, node, candidates);
}

// ---------------------------------------------------------------------------
// Membership.

void StreamingSession::subscribe(Simulator& sim, NodeId node) {
  require(!finished_, "StreamingSession::subscribe: session finished");
  require(node.valid() && overlay_.is_active(node),
          "StreamingSession::subscribe: node must be active");
  require(std::find(sources_.begin(), sources_.end(), node) ==
              sources_.end(),
          "StreamingSession::subscribe: node is a source");
  require(!is_member(node), "StreamingSession::subscribe: already a member");
  StreamMetrics& m = StreamMetrics::get();
  m.joins.add(1);
  log_event(sim.now(), "join m=" + std::to_string(node.value()));
  for (std::size_t ti = 0; ti < trees_.size(); ++ti) {
    Tree& tree = trees_[ti];
    Member member;
    member.parent = NodeId{};
    member.blocked = 1;  // the missing edge counts as broken
    member.cluster = cluster_label(node);
    member.edge.ok = false;
    member.edge.wants_repair = true;
    member.edge.broke_at = sim.now();
    tree.members.emplace(node, std::move(member));
    insert_sorted(tree.by_cluster[tree.members.at(node).cluster], node);
    const bool attached =
        node_up(node) && try_attach(sim, ti, node, NodeId{});
    if (!attached) {
      m.rejected.add(1);
      log_event(sim.now(), "join-detached tree=" + std::to_string(ti) +
                               " m=" + std::to_string(node.value()));
      schedule_repair(sim);
    }
  }
}

void StreamingSession::unsubscribe(Simulator& sim, NodeId node) {
  require(!finished_, "StreamingSession::unsubscribe: session finished");
  require(is_member(node), "StreamingSession::unsubscribe: not a member");
  StreamMetrics& m = StreamMetrics::get();
  m.leaves.add(1);
  log_event(sim.now(), "leave m=" + std::to_string(node.value()));
  for (std::size_t ti = 0; ti < trees_.size(); ++ti) {
    Tree& tree = trees_[ti];
    Member& member = tree.members.at(node);
    if (member.blocked > 0 && member.interrupted_since >= 0.0) {
      m.interruption_ms.observe(sim.now() - member.interrupted_since);
    }
    // Everyone whose edge rides the leaver: its children (their edges
    // start at it) plus members relaying through it.
    std::vector<NodeId> affected;
    const auto bit = tree.by_proxy.find(node);
    if (bit != tree.by_proxy.end()) {
      for (NodeId x : bit->second) {
        if (x != node) affected.push_back(x);
      }
    }
    if (!member.edge.claimed.empty()) {
      qos_.release_nodes(member.edge.claimed, params_.demand);
    }
    index_edge(tree, node, member.edge, /*add=*/false);
    if (member.parent.valid()) {
      erase_sorted(children_of(tree, member.parent), node);
    }
    {
      const auto cit = tree.by_cluster.find(member.cluster);
      if (cit != tree.by_cluster.end()) {
        erase_sorted(cit->second, node);
        if (cit->second.empty()) tree.by_cluster.erase(cit);
      }
      const auto hit = tree.head.find(member.cluster);
      if (hit != tree.head.end() && hit->second == node) {
        tree.head.erase(hit);
      }
    }
    tree.members.erase(node);
    // Detach every affected member first (so none is picked as a
    // candidate for another), then regraft, avoiding the leaver's proxy.
    for (NodeId x : affected) {
      Member& mx = tree.members.at(x);
      if (!mx.edge.claimed.empty()) {
        qos_.release_nodes(mx.edge.claimed, params_.demand);
      }
      index_edge(tree, x, mx.edge, /*add=*/false);
      if (mx.parent.valid() && mx.parent != node) {
        erase_sorted(children_of(tree, mx.parent), x);
      }
      mx.parent = NodeId{};
      mx.edge = Edge{};
      mx.edge.wants_repair = true;
      mx.edge.broke_at = sim.now();
      m.breaks_crash.add(1);
      bump_subtree(sim, tree, x,
                   1 - static_cast<std::int64_t>(mx.blocked));
    }
    for (NodeId x : affected) {
      if (node_up(x) && try_attach(sim, ti, x, node)) {
        regrafts_++;
        m.regrafts.add(1);
      } else {
        m.rejected.add(1);
        schedule_repair(sim);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fault reactions.

void StreamingSession::on_crash(Simulator& sim, NodeId node) {
  if (finished_) return;
  StreamMetrics& m = StreamMetrics::get();
  bool any = false;
  for (Tree& tree : trees_) {
    const auto bit = tree.by_proxy.find(node);
    if (bit == tree.by_proxy.end()) continue;
    const std::vector<NodeId> affected = bit->second;  // copy: we mutate
    for (NodeId x : affected) {
      Member& member = tree.members.at(x);
      if (member.edge.ok) m.breaks_crash.add(1);
      // wants_repair even if the edge was already partition-severed: one
      // of its proxies is gone now, so waiting for the heal is pointless.
      mark_edge_broken(sim, tree, x, /*wants_repair=*/true);
      any = true;
    }
  }
  if (any) {
    log_event(sim.now(), "crash p=" + std::to_string(node.value()));
    schedule_repair(sim);
  }
}

void StreamingSession::on_recover(Simulator& sim, NodeId node) {
  if (finished_) return;
  for (Tree& tree : trees_) {
    const auto bit = tree.by_proxy.find(node);
    if (bit == tree.by_proxy.end()) continue;
    const std::vector<NodeId> affected = bit->second;
    for (NodeId x : affected) try_restore_edge(sim, tree, x);
  }
  // A recovered member may be a detached orphan (its edge is empty, so
  // by_proxy does not know it) — let the next pass pick it up.
  schedule_repair(sim);
}

void StreamingSession::on_partition(Simulator& sim, ClusterId a,
                                    ClusterId b) {
  if (finished_) return;
  StreamMetrics& m = StreamMetrics::get();
  const auto crosses = [&](const Edge& edge) {
    for (const auto& [ca, cb] : edge.crossings) {
      if ((ca == a && cb == b) || (ca == b && cb == a)) return true;
    }
    return false;
  };
  for (Tree& tree : trees_) {
    std::vector<NodeId> hit;
    for (const auto& [x, member] : tree.members) {
      if (member.edge.ok && crosses(member.edge)) hit.push_back(x);
    }
    for (NodeId x : hit) {
      m.breaks_partition.add(1);
      // A severed edge is intact — both ends will still be there when
      // the partition heals — so no regraft: wait it out.
      mark_edge_broken(sim, tree, x, /*wants_repair=*/false);
    }
  }
}

void StreamingSession::on_heal(Simulator& sim, ClusterId a, ClusterId b) {
  if (finished_) return;
  (void)a;
  (void)b;
  for (Tree& tree : trees_) {
    std::vector<NodeId> broken;
    for (const auto& [x, member] : tree.members) {
      if (!member.edge.ok && !member.edge.hops.empty()) broken.push_back(x);
    }
    for (NodeId x : broken) try_restore_edge(sim, tree, x);
  }
}

// ---------------------------------------------------------------------------
// Repair passes.

void StreamingSession::schedule_repair(Simulator& sim) {
  if (finished_ || repair_pending_) return;
  if (horizon_ms_ >= 0.0 &&
      sim.now() + params_.repair_delay_ms > horizon_ms_) {
    return;  // the session ends before the pass would run
  }
  repair_pending_ = true;
  sim.schedule_in(params_.repair_delay_ms, [this](Simulator& s) {
    repair_pending_ = false;
    repair_pass(s);
  });
}

void StreamingSession::repair_pass(Simulator& sim) {
  if (finished_) return;
  StreamMetrics& m = StreamMetrics::get();
  struct Job {
    std::size_t tree;
    NodeId node;
    std::vector<Candidate> candidates;
  };
  std::vector<Job> jobs;
  for (std::size_t ti = 0; ti < trees_.size(); ++ti) {
    for (const auto& [x, member] : trees_[ti].members) {
      if (member.edge.wants_repair && node_up(x)) {
        jobs.push_back(Job{ti, x, {}});
      }
    }
  }
  if (jobs.empty()) return;
  // Candidate shortlists serially (clique head election mutates state)…
  for (Job& job : jobs) {
    job.candidates = collect_candidates(trees_[job.tree], job.node, NodeId{});
  }
  // …then the routing fan-out: read-only route_degraded calls against the
  // pre-synced universe router, one slot per orphan, merged serially —
  // the digest is thread-count independent.
  const HierarchicalServiceRouter& router = overlay_.universe_router();
  parallel_for(jobs.size(), 1, [&](std::size_t i) {
    Job& job = jobs[i];
    for (Candidate& cand : job.candidates) {
      route_candidate(router, trees_[job.tree], job.node, cand, NodeId{});
    }
  });
  for (Job& job : jobs) {
    Tree& tree = trees_[job.tree];
    const auto it = tree.members.find(job.node);
    if (it == tree.members.end() || !it->second.edge.wants_repair) continue;
    const double broke_at = it->second.edge.broke_at;
    if (apply_attach(sim, job.tree, job.node, job.candidates)) {
      regrafts_++;
      m.regrafts.add(1);
      m.repair_latency_ms.observe(sim.now() - broke_at);
    } else {
      repair_failures_++;
      m.repair_failures.add(1);
    }
  }
  bool remaining = false;
  for (const Tree& tree : trees_) {
    for (const auto& [x, member] : tree.members) {
      (void)x;
      if (member.edge.wants_repair) {
        remaining = true;
        break;
      }
    }
    if (remaining) break;
  }
  if (remaining) schedule_repair(sim);
}

// ---------------------------------------------------------------------------
// Continuity ticks and session close.

void StreamingSession::tick(Simulator& sim) {
  if (finished_) return;
  StreamMetrics& m = StreamMetrics::get();
  const double loss =
      injector_ == nullptr
          ? 0.0
          : std::max(injector_->plan().base_loss(),
                     injector_->current_burst_loss());
  TickPoint point;
  point.time_ms = sim.now();
  for (Tree& tree : trees_) {
    for (const auto& [x, member] : tree.members) {
      (void)x;
      ++point.expected;
      bool delivered = member.blocked == 0;
      if (delivered && loss > 0.0 && tick_rng_.chance(loss)) {
        delivered = false;
      }
      if (delivered) ++point.delivered;
    }
  }
  m.ticks_expected.add(point.expected);
  m.ticks_delivered.add(point.delivered);
  ticks_.push_back(point);
}

void StreamingSession::finish(Simulator& sim) {
  if (finished_) return;
  finished_ = true;
  StreamMetrics& m = StreamMetrics::get();
  for (Tree& tree : trees_) {
    for (auto& [x, member] : tree.members) {
      (void)x;
      if (member.blocked > 0 && member.interrupted_since >= 0.0) {
        m.interruption_ms.observe(sim.now() - member.interrupted_since);
        member.interrupted_since = -1.0;
      }
      if (!member.edge.claimed.empty()) {
        qos_.release_nodes(member.edge.claimed, params_.demand);
        member.edge.claimed.clear();
      }
    }
  }
  log_event(sim.now(), "finish members=" + std::to_string(member_count()));
}

// ---------------------------------------------------------------------------
// Inspection.

NodeId StreamingSession::source(std::size_t tree) const {
  require(tree < trees_.size(), "StreamingSession::source: bad tree");
  return trees_[tree].source;
}

std::size_t StreamingSession::member_count() const {
  return trees_.empty() ? 0 : trees_.front().members.size();
}

bool StreamingSession::is_member(NodeId node) const {
  return !trees_.empty() &&
         trees_.front().members.find(node) != trees_.front().members.end();
}

std::size_t StreamingSession::unblocked_count(std::size_t tree) const {
  require(tree < trees_.size(), "StreamingSession: bad tree");
  std::size_t n = 0;
  for (const auto& [x, member] : trees_[tree].members) {
    (void)x;
    if (member.blocked == 0) ++n;
  }
  return n;
}

std::size_t StreamingSession::orphan_count(std::size_t tree) const {
  require(tree < trees_.size(), "StreamingSession: bad tree");
  std::size_t n = 0;
  for (const auto& [x, member] : trees_[tree].members) {
    (void)x;
    if (!member.edge.ok) ++n;
  }
  return n;
}

std::vector<ServiceHop> StreamingSession::branch_of(std::size_t tree,
                                                    NodeId node) const {
  require(tree < trees_.size(), "StreamingSession::branch_of: bad tree");
  const Tree& t = trees_[tree];
  std::vector<NodeId> chain;
  NodeId at = node;
  while (true) {
    const auto it = t.members.find(at);
    if (it == t.members.end()) return {};  // not a member
    chain.push_back(at);
    if (!it->second.parent.valid()) return {};  // detached somewhere
    if (it->second.parent == t.source) break;
    at = it->second.parent;
  }
  std::reverse(chain.begin(), chain.end());
  std::vector<ServiceHop> out{ServiceHop{t.source, ServiceId{}}};
  for (NodeId m : chain) {
    const Edge& edge = t.members.at(m).edge;
    if (edge.hops.empty()) return {};
    const std::size_t first = edge.hops.front().is_relay() ? 1 : 0;
    for (std::size_t h = first; h < edge.hops.size(); ++h) {
      out.push_back(edge.hops[h]);
    }
  }
  return out;
}

StreamingSession::TreeExport StreamingSession::as_multicast_tree(
    std::size_t tree) const {
  require(tree < trees_.size(), "StreamingSession: bad tree");
  const Tree& t = trees_[tree];
  TreeExport out;
  out.request.source = t.source;
  out.request.graph = ServiceGraph::linear(params_.chain);
  MulticastTree& mt = out.tree;
  mt.nodes.push_back(MulticastTree::TreeNode{
      t.source, ServiceId{}, MulticastTree::TreeNode::kNoParent});
  std::map<NodeId, std::size_t> leaf;
  // DFS from the source over attached edges; children vectors are sorted,
  // so the node order is deterministic.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (auto it = t.source_children.rbegin(); it != t.source_children.rend();
       ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [m, parent_leaf] = stack.back();
    stack.pop_back();
    const Member& member = t.members.at(m);
    if (member.edge.hops.empty()) continue;
    std::size_t parent = parent_leaf;
    const std::size_t first = member.edge.hops.front().is_relay() ? 1 : 0;
    for (std::size_t h = first; h < member.edge.hops.size(); ++h) {
      mt.nodes.push_back(MulticastTree::TreeNode{
          member.edge.hops[h].proxy, member.edge.hops[h].service, parent});
      parent = mt.nodes.size() - 1;
    }
    leaf[m] = parent;
    for (auto it = member.children.rbegin(); it != member.children.rend();
         ++it) {
      stack.emplace_back(*it, parent);
    }
  }
  for (const auto& [m, index] : leaf) {
    out.request.destinations.push_back(m);
    mt.destination_leaf.push_back(index);
  }
  mt.found = true;
  for (std::size_t n = 1; n < mt.nodes.size(); ++n) {
    const NodeId a = mt.nodes[mt.nodes[n].parent].proxy;
    const NodeId b = mt.nodes[n].proxy;
    if (a != b) {
      mt.cost += overlay_.universe_network().coord_distance(a, b);
    }
  }
  return out;
}

ContinuityStats StreamingSession::continuity(double after_ms) const {
  ContinuityStats stats;
  for (const TickPoint& point : ticks_) {
    if (point.time_ms <= after_ms) continue;
    stats.expected += point.expected;
    stats.delivered += point.delivered;
  }
  return stats;
}

void StreamingSession::log_event(double time_ms, const std::string& line) {
  log_.push_back("t=" + hexd(time_ms) + " " + line);
}

std::string StreamingSession::digest() const {
  std::ostringstream os;
  os << std::hexfloat;
  os << "streaming mode="
     << (params_.mode == StreamMode::kLocating ? "locating" : "clique")
     << " sources=" << sources_.size() << " budget=" << params_.repair_budget
     << " chain=" << params_.chain.size() << "\n";
  for (const std::string& line : log_) os << line << "\n";
  for (std::size_t ti = 0; ti < trees_.size(); ++ti) {
    const Tree& tree = trees_[ti];
    os << "tree " << ti << " source=" << tree.source.value() << "\n";
    for (const auto& [x, member] : tree.members) {
      os << "  m=" << x.value() << " parent=" << member.parent.value()
         << " blocked=" << member.blocked
         << " ok=" << (member.edge.ok ? 1 : 0) << " hops=";
      for (const ServiceHop& hop : member.edge.hops) {
        os << hop.proxy.value() << "/" << hop.service.value() << ",";
      }
      os << "\n";
    }
  }
  for (const TickPoint& point : ticks_) {
    os << "tick " << point.time_ms << " " << point.expected << " "
       << point.delivered << "\n";
  }
  os << "regrafts=" << regrafts_ << " repair_failures=" << repair_failures_
     << " reserved=" << qos_.reserved_total() << "\n";
  return os.str();
}

}  // namespace hfc
