#include "streaming/stream_schedule.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/require.h"
#include "util/rng.h"

namespace hfc {

StreamSchedule StreamSchedule::random(const std::vector<NodeId>& pool,
                                      const StreamScheduleParams& params,
                                      std::uint64_t seed) {
  require(params.horizon_ms > 0.0, "StreamSchedule: horizon must be > 0");
  require(params.initial_count + params.join_count <= pool.size(),
          "StreamSchedule: pool too small for the requested joins");
  require(params.leave_count <= params.initial_count + params.join_count,
          "StreamSchedule: more leaves than members");
  for (NodeId node : pool) {
    require(node.valid(), "StreamSchedule: invalid node in pool");
  }

  Rng rng = Rng(seed).fork(0x5c4ed01eu);
  std::vector<std::size_t> picks = rng.sample_indices(
      pool.size(), params.initial_count + params.join_count);

  std::vector<StreamEvent> events;
  events.reserve(params.initial_count + params.join_count +
                 params.leave_count);
  // joined_at[node] = join time, for placing its leave strictly after.
  std::vector<std::pair<NodeId, double>> joined;
  for (std::size_t i = 0; i < picks.size(); ++i) {
    const NodeId node = pool[picks[i]];
    const double at = i < params.initial_count
                          ? 0.0
                          : rng.uniform_real(0.0, params.horizon_ms);
    events.push_back(StreamEvent{at, /*join=*/true, node});
    joined.emplace_back(node, at);
  }
  const std::vector<std::size_t> leavers =
      rng.sample_indices(joined.size(), params.leave_count);
  for (std::size_t index : leavers) {
    const auto& [node, at] = joined[index];
    const double leave_at =
        at + rng.uniform_real(0.0, params.horizon_ms - at);
    events.push_back(StreamEvent{leave_at, /*join=*/false, node});
  }
  std::sort(events.begin(), events.end(),
            [](const StreamEvent& a, const StreamEvent& b) {
              if (a.time_ms != b.time_ms) return a.time_ms < b.time_ms;
              if (a.join != b.join) return a.join;  // join before leave
              return a.node < b.node;
            });
  return StreamSchedule(std::move(events));
}

StreamSchedule::StreamSchedule(std::vector<StreamEvent> events)
    : events_(std::move(events)) {
  std::set<NodeId> in, seen;
  for (const StreamEvent& event : events_) {
    require(event.node.valid(), "StreamSchedule: invalid node");
    require(event.time_ms >= 0.0, "StreamSchedule: negative time");
    if (event.join) {
      require(seen.insert(event.node).second,
              "StreamSchedule: node joins twice");
      in.insert(event.node);
    } else {
      require(in.erase(event.node) == 1,
              "StreamSchedule: leave without a prior join");
    }
  }
  require(std::is_sorted(events_.begin(), events_.end(),
                         [](const StreamEvent& a, const StreamEvent& b) {
                           return a.time_ms < b.time_ms;
                         }),
          "StreamSchedule: events out of order");
}

std::vector<NodeId> StreamSchedule::late_joiners() const {
  std::vector<NodeId> out;
  for (const StreamEvent& event : events_) {
    if (event.join && event.time_ms > 0.0) out.push_back(event.node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void StreamSchedule::arm(Simulator& sim, DynamicHfcOverlay& overlay,
                         StreamingSession& session) const {
  for (const StreamEvent& event : events_) {
    if (event.join) {
      sim.schedule_at(event.time_ms,
                      [&overlay, &session, node = event.node](Simulator& s) {
                        if (!overlay.is_active(node)) {
                          const ChurnEvent activate =
                              ChurnEvent::make_activate(node);
                          overlay.apply({&activate, 1});
                        }
                        session.subscribe(s, node);
                      });
    } else {
      sim.schedule_at(event.time_ms,
                      [&overlay, &session, node = event.node](Simulator& s) {
                        session.unsubscribe(s, node);
                        const ChurnEvent deactivate =
                            ChurnEvent::make_deactivate(node);
                        overlay.apply({&deactivate, 1});
                      });
    }
  }
}

}  // namespace hfc
