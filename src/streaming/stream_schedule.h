// Deterministic join/leave schedules for streaming sessions.
//
// A `StreamSchedule` is the membership-side counterpart of a `FaultPlan`:
// a seeded, serializable-in-spirit list of timed join and leave events
// drawn once up front, so chaos tests and benches can replay the exact
// same member timeline across serial, replay and multi-threaded runs.
// `arm()` wires each event through both the PR 4 incremental churn path
// (activate before join, deactivate after leave) and the session.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/dynamic_overlay.h"
#include "sim/event_queue.h"
#include "streaming/streaming_session.h"
#include "util/ids.h"

namespace hfc {

struct StreamEvent {
  double time_ms = 0.0;
  bool join = true;  ///< false = leave
  NodeId node;
};

struct StreamScheduleParams {
  std::size_t initial_count = 0;  ///< members joining at t=0
  std::size_t join_count = 0;     ///< later joins, uniform over the horizon
  std::size_t leave_count = 0;    ///< leaves of current members
  double horizon_ms = 1000.0;
};

class StreamSchedule {
 public:
  /// Draw a random schedule over `pool` (candidate member nodes; sources
  /// must not be in it). Initial members join at t=0; later joins pick
  /// nodes from the unused pool and leaves pick current members, both at
  /// uniform times in (0, horizon). Events are sorted by (time, join,
  /// node); a node leaves at most once and never before it joined.
  [[nodiscard]] static StreamSchedule random(const std::vector<NodeId>& pool,
                                             const StreamScheduleParams& params,
                                             std::uint64_t seed);

  explicit StreamSchedule(std::vector<StreamEvent> events);

  [[nodiscard]] const std::vector<StreamEvent>& events() const {
    return events_;
  }

  /// Nodes that join at some point but are not initial members — the
  /// driver deactivates them up front so joins exercise the churn path.
  [[nodiscard]] std::vector<NodeId> late_joiners() const;

  /// Schedule every event onto `sim`: a join activates the node in the
  /// overlay (if needed) and subscribes it; a leave unsubscribes it and
  /// then deactivates it. Call once, before sim.run(); the overlay and
  /// session must outlive the run.
  void arm(Simulator& sim, DynamicHfcOverlay& overlay,
           StreamingSession& session) const;

 private:
  std::vector<StreamEvent> events_;
};

}  // namespace hfc
