// Long-lived streaming multicast sessions under churn and faults.
//
// The paper motivates service overlays with multimedia delivery, but a
// one-shot multicast tree (src/multicast) is a snapshot: the moment a
// member leaves through the churn path or a relay crashes under a
// FaultPlan, the tree silently stops describing reality. A
// `StreamingSession` keeps one service multicast tree per source alive
// across the sim timeline:
//
//  - members join and leave through the PR 4 incremental churn path
//    (`DynamicHfcOverlay`), and the session grafts/regrafts their uplink
//    edges over the live universe router;
//  - proxies crash and recover and cluster pairs partition/heal through a
//    PR 5 `FaultInjector`; the session subscribes to its hooks, marks the
//    edges riding a dead proxy or a severed cluster pair as interrupted,
//    and schedules repair passes that regraft orphaned subtrees;
//  - per-receiver continuity is tracked tick by tick, surfaced through
//    `stream.*` metrics (delivery ratio, interruption duration and repair
//    latency histograms) and a per-run digest that is byte-identical
//    across serial, replay and multi-threaded runs.
//
// Two regraft strategies, selected by the HFC_STREAM_MODE knob
// (DESIGN.md §15):
//
//  - kLocating ("A Locating-First Approach for Scalable Overlay
//    Multicast"): a joiner or orphan first locates the nearest live
//    already-attached members by GNP coordinate distance — own cluster
//    first — then refines the shortlist through the unicast router and
//    attaches to the cheapest feasible candidate.
//  - kClique (CliqueStream-style clustered dissemination): each cluster
//    elects one head per tree; members attach to their cluster head
//    directly (intra-cluster full connectivity), heads form the
//    inter-cluster backbone, and repair promotes a surviving member to
//    head when the old one dies.
//
// Determinism contract: all session state mutates inside simulator
// handlers, which run serially; the only parallel section is the repair
// pass's candidate routing, which fans read-only `route_degraded` calls
// over the thread pool into per-orphan slots and merges serially — so a
// given (universe, schedule, plan, seed) tuple produces a bit-identical
// digest at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dynamic/dynamic_overlay.h"
#include "fault/fault_injector.h"
#include "multicast/service_multicast.h"
#include "qos/qos_manager.h"
#include "routing/service_path.h"
#include "sim/event_queue.h"
#include "util/ids.h"
#include "util/rng.h"

namespace hfc {

/// Regraft strategy for joins and orphan repair.
enum class StreamMode {
  kLocating,  ///< coordinate shortlist, refined via the unicast router
  kClique,    ///< per-cluster heads, CliqueStream-style
};

/// Mode selected by the HFC_STREAM_MODE knob: "locating" (default) or
/// "clique". Malformed values warn once (env_warning_count observable)
/// and fall back to kLocating.
[[nodiscard]] StreamMode stream_mode_from_env();

struct StreamingParams {
  /// Service chain applied source-to-member (may be empty = pure relay
  /// dissemination). Every branch applies it exactly once.
  std::vector<ServiceId> chain;
  /// Continuity sampling period: every tick, every member either receives
  /// the stream (root path fully live) or records a miss.
  double tick_ms = 50.0;
  /// Detection-to-repair latency: a repair pass runs this long after the
  /// fault that orphaned a subtree (and keeps retrying at this period
  /// while orphans remain).
  double repair_delay_ms = 25.0;
  /// Capacity units a member's uplink reserves on every distinct proxy of
  /// its edge (relays included — they forward the stream).
  double demand = 1.0;
  StreamMode mode = stream_mode_from_env();
  /// Attach candidates refined through the unicast router per join or
  /// orphan (HFC_STREAM_REPAIR_BUDGET).
  std::size_t repair_budget = 0;  ///< 0 = read the knob
  /// Seeds the per-tick loss draws (statistically independent from the
  /// injector's message stream).
  std::uint64_t seed = 1;
};

/// Aggregate continuity over a tick range.
struct ContinuityStats {
  std::uint64_t expected = 0;
  std::uint64_t delivered = 0;
  [[nodiscard]] double ratio() const {
    return expected == 0 ? 1.0
                         : static_cast<double>(delivered) /
                               static_cast<double>(expected);
  }
};

class StreamingSession {
 public:
  /// One tree per source over a shared member set. The overlay must be in
  /// incremental churn mode (the session routes over its universe-level
  /// router); sources must be active, distinct universe nodes and must
  /// stay members of the overlay for the session's lifetime. `qos` spans
  /// the same universe network. Both must outlive the session.
  StreamingSession(DynamicHfcOverlay& overlay, QosManager& qos,
                   std::vector<NodeId> sources, StreamingParams params);

  /// Mirror an injector's fault timeline: the session takes over its
  /// on_crash/on_recover/on_partition/on_heal hooks. Call before
  /// `injector.arm()` fires events; the injector must outlive the session.
  void attach_injector(FaultInjector& injector);

  /// Schedule the continuity ticks (every tick_ms up to `horizon_ms`) and
  /// the session finish at `horizon_ms`. Call once, before sim.run().
  void start(Simulator& sim, double horizon_ms);

  /// Member joins every tree: locate by coordinates, refine via the
  /// router, reserve capacity. A member that cannot be attached right now
  /// (down, no feasible candidate) stays subscribed but detached and is
  /// picked up by later repair passes. Throws if `node` is a source,
  /// already subscribed, or not active in the overlay.
  void subscribe(Simulator& sim, NodeId node);

  /// Member leaves every tree: its reservations are released and the
  /// members relaying through it (children included) are regrafted
  /// synchronously, avoiding the leaver. Call before deactivating the
  /// node in the overlay. Throws if not subscribed.
  void unsubscribe(Simulator& sim, NodeId node);

  /// Close the session: releases every reservation (reserve/release net
  /// zero against the QosManager) and freezes continuity accounting.
  /// Scheduled automatically by start(); idempotent.
  void finish(Simulator& sim);

  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }
  [[nodiscard]] NodeId source(std::size_t tree) const;
  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] bool is_member(NodeId node) const;
  /// Members currently delivering on tree `tree` (root path fully live).
  [[nodiscard]] std::size_t unblocked_count(std::size_t tree) const;
  /// Members of tree `tree` whose edge is broken or missing.
  [[nodiscard]] std::size_t orphan_count(std::size_t tree) const;
  /// Root-path hop sequence of `node` on tree `tree` (empty if detached
  /// somewhere along the way). Hop 0 is the source.
  [[nodiscard]] std::vector<ServiceHop> branch_of(std::size_t tree,
                                                  NodeId node) const;

  /// Export tree `tree` as a one-shot MulticastTree over the members
  /// currently reachable from the source through attached edges, with the
  /// matching request (destinations in ascending member order). The
  /// export satisfies tree_satisfies() whenever every reachable branch is
  /// fully live.
  struct TreeExport {
    MulticastTree tree;
    MulticastRequest request;
  };
  [[nodiscard]] TreeExport as_multicast_tree(std::size_t tree) const;

  /// Continuity over ticks strictly after `after_ms` (-inf = whole run;
  /// departed members' ticks are included — they are folded into the
  /// per-tick log when they leave).
  [[nodiscard]] ContinuityStats continuity(double after_ms = -1.0) const;

  [[nodiscard]] std::uint64_t regraft_count() const { return regrafts_; }
  [[nodiscard]] std::uint64_t repair_failure_count() const {
    return repair_failures_;
  }

  /// Hexfloat digest of the full session history: every join, leave,
  /// break, regraft and tick tally plus the final tree shapes. Equal
  /// digests <=> bit-identical runs.
  [[nodiscard]] std::string digest() const;

 private:
  struct Edge {
    std::vector<ServiceHop> hops;  ///< attach .. member; empty = detached
    std::vector<NodeId> claimed;   ///< distinct proxies, hops[1..]
    /// Cluster pairs the edge crosses (partition exposure), as stored at
    /// graft time; cluster labels are stable while the hops stay active.
    std::vector<std::pair<ClusterId, ClusterId>> crossings;
    bool ok = false;            ///< currently delivering
    bool wants_repair = false;  ///< broken by crash/leave, regraft wanted
    double broke_at = 0.0;
  };
  struct Member {
    NodeId parent;  ///< source or member; invalid = detached
    std::vector<NodeId> children;
    Edge edge;
    /// Broken edges on the root path (own edge included); 0 = delivering.
    std::uint32_t blocked = 0;
    double interrupted_since = -1.0;
    std::int32_t cluster = -1;  ///< universe cluster label at join time
  };
  struct Tree {
    NodeId source;
    std::map<NodeId, Member> members;  ///< deterministic iteration order
    std::vector<NodeId> source_children;  ///< sorted
    /// proxy -> members whose edge includes it (sorted, deduped).
    std::map<NodeId, std::vector<NodeId>> by_proxy;
    /// cluster label -> members (sorted); keys from Member::cluster.
    std::map<std::int32_t, std::vector<NodeId>> by_cluster;
    /// kClique: cluster label -> designated head member.
    std::map<std::int32_t, NodeId> head;
  };
  struct TickPoint {
    double time_ms = 0.0;
    std::uint64_t expected = 0;
    std::uint64_t delivered = 0;
  };
  /// One scored attach candidate (route filled by the repair pass's
  /// parallel fan-out or inline for joins/leaves).
  struct Candidate {
    NodeId attach;
    ServicePath path;
    double cost = 0.0;
  };

  [[nodiscard]] bool node_up(NodeId node) const;
  [[nodiscard]] bool edge_alive(const Edge& edge) const;
  [[nodiscard]] std::uint32_t parent_blocked(const Tree& tree,
                                             NodeId parent) const;
  [[nodiscard]] std::int32_t cluster_label(NodeId node) const;
  [[nodiscard]] std::vector<NodeId>& children_of(Tree& tree, NodeId parent);
  /// Head of `cluster` on `tree` after lazy re-election: the stored head
  /// if still eligible, else the smallest eligible member of the cluster
  /// (stored back), else invalid.
  NodeId resolve_head(Tree& tree, std::int32_t cluster) const;

  /// Shortlisted attach points for (re)grafting `node` onto `tree`,
  /// mode-dependent, excluding `exclude` (a leaver mid-withdrawal).
  /// Candidates are eligible *now*: attached, unblocked, up members (or
  /// the source). Routes are not filled in.
  [[nodiscard]] std::vector<Candidate> collect_candidates(
      Tree& tree, NodeId node, NodeId exclude) const;
  /// Fill candidate.path/cost: direct intra-cluster edge when possible,
  /// unicast route otherwise. `router` must be pre-synced (the caller
  /// grabs universe_router() serially); the call itself is read-only and
  /// safe to fan out in parallel.
  void route_candidate(const HierarchicalServiceRouter& router,
                       const Tree& tree, NodeId node, Candidate& cand,
                       NodeId exclude) const;
  /// Serially pick the cheapest feasible routed candidate and graft
  /// `node` under it (releasing the old claim, rebasing the subtree).
  /// Returns false when nothing is feasible; the member stays detached.
  bool apply_attach(Simulator& sim, std::size_t tree_index, NodeId node,
                    std::vector<Candidate>& candidates);
  /// collect + route + apply inline (joins and leave-time regrafts).
  bool try_attach(Simulator& sim, std::size_t tree_index, NodeId node,
                  NodeId exclude);

  /// Add/remove `node`'s edge hops to/from the by_proxy index.
  void index_edge(Tree& tree, NodeId node, const Edge& edge, bool add);
  /// blocked += delta over the subtree rooted at `node` (inclusive),
  /// recording interruption transitions against the sim clock.
  void bump_subtree(Simulator& sim, Tree& tree, NodeId node,
                    std::int64_t delta);
  void mark_edge_broken(Simulator& sim, Tree& tree, NodeId node,
                        bool wants_repair);
  void try_restore_edge(Simulator& sim, Tree& tree, NodeId node);

  void on_crash(Simulator& sim, NodeId node);
  void on_recover(Simulator& sim, NodeId node);
  void on_partition(Simulator& sim, ClusterId a, ClusterId b);
  void on_heal(Simulator& sim, ClusterId a, ClusterId b);
  void schedule_repair(Simulator& sim);
  void repair_pass(Simulator& sim);
  void tick(Simulator& sim);

  void log_event(double time_ms, const std::string& line);

  DynamicHfcOverlay& overlay_;
  QosManager& qos_;
  std::vector<NodeId> sources_;
  StreamingParams params_;
  FaultInjector* injector_ = nullptr;
  /// The armed simulator (set by start()); injector hooks need the clock.
  Simulator* sim_ = nullptr;
  std::vector<Tree> trees_;
  Rng tick_rng_;
  bool started_ = false;
  bool finished_ = false;
  bool repair_pending_ = false;
  double horizon_ms_ = -1.0;
  std::uint64_t regrafts_ = 0;
  std::uint64_t repair_failures_ = 0;
  std::vector<TickPoint> ticks_;
  std::vector<std::string> log_;
};

}  // namespace hfc
