#include "services/workload.h"

#include <algorithm>

#include "util/require.h"

namespace hfc {

ServicePlacement assign_services(std::size_t proxy_count,
                                 const WorkloadParams& params, Rng& rng) {
  require(proxy_count > 0, "assign_services: need >= 1 proxy");
  require(params.catalog_size > 0, "assign_services: empty catalog");
  require(params.services_per_proxy_min >= 1 &&
              params.services_per_proxy_min <= params.services_per_proxy_max,
          "assign_services: bad services-per-proxy range");
  require(params.services_per_proxy_max <= params.catalog_size,
          "assign_services: more services per proxy than catalog entries");

  ServicePlacement placement(proxy_count);
  // Seed coverage: service (i mod catalog) goes to proxy i, so every
  // catalog service is hosted somewhere as long as proxies >= catalog.
  // When proxies < catalog, the remaining services are seeded onto random
  // proxies as extras below the per-proxy cap.
  for (std::size_t p = 0; p < proxy_count; ++p) {
    placement[p].push_back(
        ServiceId(static_cast<std::int32_t>(p % params.catalog_size)));
  }
  for (std::size_t s = proxy_count; s < params.catalog_size; ++s) {
    placement[rng.pick_index(proxy_count)].push_back(
        ServiceId(static_cast<std::int32_t>(s)));
  }

  for (std::size_t p = 0; p < proxy_count; ++p) {
    const std::size_t want = static_cast<std::size_t>(
        rng.uniform_int(static_cast<int>(params.services_per_proxy_min),
                        static_cast<int>(params.services_per_proxy_max)));
    while (placement[p].size() < want) {
      const ServiceId candidate(
          static_cast<std::int32_t>(rng.pick_index(params.catalog_size)));
      if (std::find(placement[p].begin(), placement[p].end(), candidate) ==
          placement[p].end()) {
        placement[p].push_back(candidate);
      }
    }
    std::sort(placement[p].begin(), placement[p].end());
    // Seeding can overshoot `want` by a couple of entries; that is fine —
    // the paper only bounds the random draw, and coverage matters more.
    placement[p].erase(
        std::unique(placement[p].begin(), placement[p].end()),
        placement[p].end());
  }
  return placement;
}

bool placement_satisfies(const ServicePlacement& placement,
                         const ServiceGraph& graph) {
  for (ServiceId s : graph.distinct_services()) {
    bool hosted = false;
    for (const auto& services : placement) {
      if (std::binary_search(services.begin(), services.end(), s)) {
        hosted = true;
        break;
      }
    }
    if (!hosted) return false;
  }
  return true;
}

namespace {

/// Widen a linear chain into a Figure-2(b)-style non-linear SG: add one or
/// two alternative source vertices that feed into early chain vertices,
/// and possibly a skip edge deeper into the chain.
void add_alternative_sources(ServiceGraph& graph, std::size_t chain_length,
                             std::size_t catalog_size, Rng& rng) {
  const int branches = rng.uniform_int(1, 2);
  for (int b = 0; b < branches; ++b) {
    const ServiceId alt(
        static_cast<std::int32_t>(rng.pick_index(catalog_size)));
    const std::size_t v = graph.add_vertex(alt);
    // Feed into a random early chain vertex (never vertex 0, which stays a
    // parallel source).
    const std::size_t attach = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<int>(chain_length - 1)));
    graph.add_edge(v, attach);
    // Optionally also allow skipping ahead (s3 -> s2 in Figure 2b).
    if (attach + 1 < chain_length && rng.chance(0.5)) {
      const std::size_t skip = static_cast<std::size_t>(rng.uniform_int(
          static_cast<int>(attach + 1), static_cast<int>(chain_length - 1)));
      graph.add_edge(v, skip);
    }
  }
}

}  // namespace

ServiceRequest make_request(NodeId source, NodeId destination,
                            std::size_t length, const WorkloadParams& params,
                            Rng& rng) {
  require(source.valid() && destination.valid(),
          "make_request: invalid endpoints");
  require(length >= 1, "make_request: empty request");
  require(length <= params.catalog_size,
          "make_request: request longer than catalog");

  std::vector<ServiceId> chain;
  chain.reserve(length);
  for (std::size_t idx : rng.sample_indices(params.catalog_size, length)) {
    chain.push_back(ServiceId(static_cast<std::int32_t>(idx)));
  }

  ServiceRequest request;
  request.source = source;
  request.destination = destination;
  request.graph = ServiceGraph::linear(chain);
  if (length >= 2 && params.nonlinear_fraction > 0.0 &&
      rng.chance(params.nonlinear_fraction)) {
    add_alternative_sources(request.graph, length, params.catalog_size, rng);
  }
  return request;
}

std::vector<ServiceRequest> make_requests(
    std::size_t count, const std::vector<NodeId>& endpoint_pool,
    const WorkloadParams& params, Rng& rng) {
  require(!endpoint_pool.empty(), "make_requests: empty endpoint pool");
  require(params.request_length_min >= 1 &&
              params.request_length_min <= params.request_length_max,
          "make_requests: bad request length range");

  std::vector<ServiceRequest> out;
  out.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    const NodeId src = rng.pick(endpoint_pool);
    NodeId dst = rng.pick(endpoint_pool);
    for (int attempt = 0; attempt < 16 && dst == src; ++attempt) {
      dst = rng.pick(endpoint_pool);
    }
    const std::size_t length = static_cast<std::size_t>(
        rng.uniform_int(static_cast<int>(params.request_length_min),
                        static_cast<int>(params.request_length_max)));
    out.push_back(make_request(src, dst, length, params, rng));
  }
  return out;
}

}  // namespace hfc
