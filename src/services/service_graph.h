// The composable-services model (paper §2.1).
//
// A service request carries a *service graph* (SG): a DAG whose vertices
// are labelled with service types and whose edges express dependency
// (operational or input/output constraints). A linear SG has exactly one
// configuration; a non-linear SG admits one configuration per path from a
// source service to a sink service (Figure 2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"

namespace hfc {

/// A service dependency DAG. Vertices are dense indices; each vertex is
/// labelled with the ServiceId it requires. Multiple vertices may carry
/// the same service (the same transcoder can appear in two alternative
/// configurations).
class ServiceGraph {
 public:
  /// Add a vertex labelled with `service`; returns its index.
  std::size_t add_vertex(ServiceId service);

  /// Add the dependency edge from -> to (from must precede to). Throws on
  /// out-of-range vertices, self-loops, or if the edge creates a cycle.
  void add_edge(std::size_t from, std::size_t to);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] bool empty() const { return labels_.empty(); }
  [[nodiscard]] ServiceId label(std::size_t v) const;
  [[nodiscard]] const std::vector<std::size_t>& successors(std::size_t v) const;
  [[nodiscard]] const std::vector<std::size_t>& predecessors(std::size_t v) const;

  /// Vertices with no predecessors ("source services").
  [[nodiscard]] std::vector<std::size_t> sources() const;
  /// Vertices with no successors ("sink services").
  [[nodiscard]] std::vector<std::size_t> sinks() const;

  /// A topological order of the vertices.
  [[nodiscard]] std::vector<std::size_t> topological_order() const;

  /// All feasible configurations: every vertex path from a source to a
  /// sink. Exponential in the worst case; intended for small SGs (tests,
  /// brute-force oracle).
  [[nodiscard]] std::vector<std::vector<std::size_t>> configurations() const;

  /// True when the SG is a single chain (exactly one configuration that
  /// covers every vertex).
  [[nodiscard]] bool is_linear() const;

  /// The distinct services mentioned by the SG, ascending.
  [[nodiscard]] std::vector<ServiceId> distinct_services() const;

  /// Canonical structural encoding: "<n>;l0,l1,...;u>v,u>v,..." with the
  /// edge list sorted. Two SGs produce the same string iff they have the
  /// same vertex labelling and edge set — the exact-equality key the
  /// serving engine's route cache groups requests by (DESIGN.md §12).
  [[nodiscard]] std::string canonical_encoding() const;

  /// 64-bit splitmix chain over the canonical structure (labels + sorted
  /// edges), without materializing the string. Equal SGs hash equal;
  /// used to pick a route-cache shard before the exact key is compared.
  [[nodiscard]] std::uint64_t structural_hash() const;

  /// Build a linear SG s0 -> s1 -> ... -> sk.
  [[nodiscard]] static ServiceGraph linear(const std::vector<ServiceId>& chain);

  /// Debug rendering, e.g. "0:S3 -> 1:S7 -> 2:S1".
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] bool reaches(std::size_t from, std::size_t to) const;

  std::vector<ServiceId> labels_;
  std::vector<std::vector<std::size_t>> succ_;
  std::vector<std::vector<std::size_t>> pred_;
};

/// A service request: deliver from `source` to `destination` through some
/// configuration of `graph` (paper §2.2: source proxy + SG + destination
/// proxy).
struct ServiceRequest {
  NodeId source;
  NodeId destination;
  ServiceGraph graph;
};

}  // namespace hfc
