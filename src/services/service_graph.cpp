#include "services/service_graph.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/require.h"
#include "util/rng.h"

namespace hfc {

std::size_t ServiceGraph::add_vertex(ServiceId service) {
  require(service.valid(), "ServiceGraph::add_vertex: invalid service");
  labels_.push_back(service);
  succ_.emplace_back();
  pred_.emplace_back();
  return labels_.size() - 1;
}

bool ServiceGraph::reaches(std::size_t from, std::size_t to) const {
  std::vector<std::size_t> stack{from};
  std::vector<bool> seen(labels_.size(), false);
  seen[from] = true;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    if (u == to) return true;
    for (std::size_t v : succ_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

void ServiceGraph::add_edge(std::size_t from, std::size_t to) {
  require(from < labels_.size() && to < labels_.size(),
          "ServiceGraph::add_edge: vertex out of range");
  require(from != to, "ServiceGraph::add_edge: self-loop");
  require(!reaches(to, from), "ServiceGraph::add_edge: edge creates a cycle");
  if (std::find(succ_[from].begin(), succ_[from].end(), to) !=
      succ_[from].end()) {
    return;  // duplicate edge is a no-op
  }
  succ_[from].push_back(to);
  pred_[to].push_back(from);
}

ServiceId ServiceGraph::label(std::size_t v) const {
  require(v < labels_.size(), "ServiceGraph::label: vertex out of range");
  return labels_[v];
}

const std::vector<std::size_t>& ServiceGraph::successors(std::size_t v) const {
  require(v < succ_.size(), "ServiceGraph::successors: vertex out of range");
  return succ_[v];
}

const std::vector<std::size_t>& ServiceGraph::predecessors(
    std::size_t v) const {
  require(v < pred_.size(), "ServiceGraph::predecessors: vertex out of range");
  return pred_[v];
}

std::vector<std::size_t> ServiceGraph::sources() const {
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    if (pred_[v].empty()) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> ServiceGraph::sinks() const {
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    if (succ_[v].empty()) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> ServiceGraph::topological_order() const {
  std::vector<std::size_t> indegree(labels_.size(), 0);
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    indegree[v] = pred_[v].size();
  }
  std::vector<std::size_t> order;
  order.reserve(labels_.size());
  std::vector<std::size_t> ready = sources();
  while (!ready.empty()) {
    const std::size_t u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (std::size_t v : succ_[u]) {
      if (--indegree[v] == 0) ready.push_back(v);
    }
  }
  ensure(order.size() == labels_.size(),
         "ServiceGraph::topological_order: graph has a cycle");
  return order;
}

std::vector<std::vector<std::size_t>> ServiceGraph::configurations() const {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> path;
  // DFS enumerating every source->sink vertex path.
  const auto dfs = [&](auto&& self, std::size_t v) -> void {
    path.push_back(v);
    if (succ_[v].empty()) {
      out.push_back(path);
    } else {
      for (std::size_t w : succ_[v]) self(self, w);
    }
    path.pop_back();
  };
  for (std::size_t s : sources()) dfs(dfs, s);
  return out;
}

bool ServiceGraph::is_linear() const {
  if (labels_.empty()) return true;
  if (sources().size() != 1 || sinks().size() != 1) return false;
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    if (succ_[v].size() > 1 || pred_[v].size() > 1) return false;
  }
  return true;
}

std::vector<ServiceId> ServiceGraph::distinct_services() const {
  std::vector<ServiceId> out = labels_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ServiceGraph ServiceGraph::linear(const std::vector<ServiceId>& chain) {
  ServiceGraph g;
  for (ServiceId s : chain) g.add_vertex(s);
  for (std::size_t v = 0; v + 1 < chain.size(); ++v) g.add_edge(v, v + 1);
  return g;
}

std::string ServiceGraph::canonical_encoding() const {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    for (std::size_t w : succ_[v]) edges.emplace_back(v, w);
  }
  std::sort(edges.begin(), edges.end());
  std::ostringstream os;
  os << labels_.size() << ';';
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    if (v > 0) os << ',';
    os << labels_[v].value();
  }
  os << ';';
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (e > 0) os << ',';
    os << edges[e].first << '>' << edges[e].second;
  }
  return os.str();
}

std::uint64_t ServiceGraph::structural_hash() const {
  // splitmix64 chain over the same (size, labels, sorted edges) sequence
  // canonical_encoding() prints, so hash equality follows from encoding
  // equality without building the string.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    for (std::size_t w : succ_[v]) edges.emplace_back(v, w);
  }
  std::sort(edges.begin(), edges.end());
  std::uint64_t h = splitmix64(0x5347u ^ (labels_.size() << 8));
  for (const ServiceId s : labels_) {
    h = splitmix64(h ^ static_cast<std::uint64_t>(s.value()));
  }
  for (const auto& [u, v] : edges) {
    h = splitmix64(h ^ (static_cast<std::uint64_t>(u) << 32 |
                        static_cast<std::uint64_t>(v)));
  }
  return h;
}

std::string ServiceGraph::to_string() const {
  std::ostringstream os;
  bool first_edge = true;
  for (std::size_t v = 0; v < labels_.size(); ++v) {
    for (std::size_t w : succ_[v]) {
      if (!first_edge) os << ", ";
      first_edge = false;
      os << v << ":S" << labels_[v].value() << " -> " << w << ":S"
         << labels_[w].value();
    }
  }
  if (first_edge && !labels_.empty()) {
    os << "0:S" << labels_[0].value();
  }
  return os.str();
}

}  // namespace hfc
