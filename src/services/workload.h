// Workload generation: service placement on proxies and random service
// requests, matching the paper's Table 1 environments (4-10 services per
// proxy, request lengths 4-10, client-driven source/destination choice).
#pragma once

#include <cstddef>
#include <vector>

#include "services/service_graph.h"
#include "util/ids.h"
#include "util/rng.h"

namespace hfc {

struct WorkloadParams {
  /// Number of distinct service types in the catalog.
  std::size_t catalog_size = 40;
  /// Services installed per proxy, uniform in [min, max] (Table 1: 4-10).
  std::size_t services_per_proxy_min = 4;
  std::size_t services_per_proxy_max = 10;
  /// Services per request, uniform in [min, max] (Table 1: 4-10).
  std::size_t request_length_min = 4;
  std::size_t request_length_max = 10;
  /// Fraction of requests whose SG is non-linear (extra alternative
  /// sources, as in Figure 2b). The paper's tests use linear SGs; the
  /// non-linear generator exercises the general algorithm.
  double nonlinear_fraction = 0.0;
};

/// Which services each proxy hosts. placement[p] is sorted ascending.
using ServicePlacement = std::vector<std::vector<ServiceId>>;

/// Assign services to `proxy_count` proxies. Every catalog service is
/// guaranteed to be hosted by at least one proxy (round-robin seeding),
/// then each proxy is topped up with distinct random services until its
/// drawn count is reached. Throws if parameters are inconsistent.
[[nodiscard]] ServicePlacement assign_services(std::size_t proxy_count,
                                               const WorkloadParams& params,
                                               Rng& rng);

/// True if every service of `graph` is hosted by some proxy.
[[nodiscard]] bool placement_satisfies(const ServicePlacement& placement,
                                       const ServiceGraph& graph);

/// Generate one random request between the given endpoints: a chain of
/// `length` distinct catalog services, optionally widened into a
/// non-linear SG. Throws if length exceeds the catalog.
[[nodiscard]] ServiceRequest make_request(NodeId source, NodeId destination,
                                          std::size_t length,
                                          const WorkloadParams& params,
                                          Rng& rng);

/// A batch of requests with endpoints drawn from `endpoint_pool`
/// (typically the proxies nearest to client attachment points; falls back
/// to all proxies). Source and destination are distinct when the pool
/// allows it.
[[nodiscard]] std::vector<ServiceRequest> make_requests(
    std::size_t count, const std::vector<NodeId>& endpoint_pool,
    const WorkloadParams& params, Rng& rng);

}  // namespace hfc
