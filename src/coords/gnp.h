// GNP-style network coordinates (Ng & Zhang, "Predicting Internet Network
// Distance with Coordinates-Based Approaches", INFOCOM 2002) — the
// distance-map mechanism the paper adopts in §3.1.
//
// Pipeline:
//   1. m landmarks measure the O(m^2) delays among themselves (minimum of
//      several probes) and are embedded into a k-dimensional space by
//      Nelder-Mead minimisation of relative embedding error.
//   2. Each host measures its delays to the m landmarks only, and solves
//      its own coordinates against the fixed landmark positions.
// The complete n-host distance map then costs O(m^2 + nm) measurements and
// O(kn) storage instead of O(n^2) for direct measurement.
#pragma once

#include <cstddef>
#include <vector>

#include "coords/nelder_mead.h"
#include "coords/point.h"
#include "distance/latency_oracle.h"
#include "util/rng.h"
#include "util/sym_matrix.h"

namespace hfc {

struct GnpParams {
  std::size_t dimensions = 2;  ///< the paper uses 2-d spaces throughout §6
  std::size_t probes_per_measurement = 3;  ///< "minimum of several" (§3.1)
  std::size_t landmark_restarts = 8;
  std::size_t host_restarts = 4;
  NelderMeadParams solver;  ///< initial_step is rescaled to the delay range
};

/// The shared coordinate space: dimension plus fixed landmark positions.
struct CoordinateSystem {
  std::size_t dimensions = 0;
  std::vector<Point> landmark_coords;
};

/// Relative-error quality of an embedding against ground truth.
struct EmbeddingQuality {
  double mean_rel_error = 0.0;
  double median_rel_error = 0.0;
  double p90_rel_error = 0.0;
};

/// Embed landmarks given their measured pairwise delays. Minimises the sum
/// of squared relative errors over all landmark pairs.
[[nodiscard]] CoordinateSystem embed_landmarks(
    const SymMatrix<double>& landmark_delays, const GnpParams& params,
    Rng& rng);

/// Solve one host's coordinates from its measured delays to the landmarks.
[[nodiscard]] Point solve_host(const CoordinateSystem& system,
                               const std::vector<double>& delays_to_landmarks,
                               const GnpParams& params, Rng& rng);

/// Result of the full distance-map pipeline for n proxies.
struct DistanceMap {
  CoordinateSystem system;
  /// proxy_coords[i] is the coordinate of proxy i (the i-th proxy endpoint
  /// handed to build_distance_map).
  std::vector<Point> proxy_coords;
  /// Total measurement probes consumed (O(m^2 + nm) * probes).
  std::size_t probes_used = 0;

  /// Predicted delay between proxies i and j (geometric distance).
  [[nodiscard]] double distance(std::size_t i, std::size_t j) const {
    return euclidean(proxy_coords[i], proxy_coords[j]);
  }
};

/// Run the full §3.1 pipeline against a latency oracle whose endpoints are
/// laid out as [landmarks..., proxies...]: `landmark_count` landmarks first,
/// then the proxies. Returns the coordinate map for the proxies.
[[nodiscard]] DistanceMap build_distance_map(LatencyOracle& oracle,
                                             std::size_t landmark_count,
                                             const GnpParams& params,
                                             Rng& rng);

/// Measure embedding quality of arbitrary points against a ground-truth
/// delay matrix of the same size (relative error per pair; pairs with zero
/// true delay are skipped).
[[nodiscard]] EmbeddingQuality evaluate_embedding(
    const std::vector<Point>& coords, const SymMatrix<double>& true_delays);

}  // namespace hfc
