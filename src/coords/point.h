// k-dimensional geometric points for the network coordinate space.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/require.h"

namespace hfc {

/// A point in the k-dimensional coordinate space S (paper §3.1). The
/// dimension is a runtime property so experiments can sweep it.
using Point = std::vector<double>;

/// Euclidean distance between two points of equal dimension.
[[nodiscard]] inline double euclidean(const Point& a, const Point& b) {
  require(a.size() == b.size(), "euclidean: dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace hfc
