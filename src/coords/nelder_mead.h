// Nelder-Mead simplex function minimisation (Nelder & Mead, Computer
// Journal 1965) — the method the paper cites ([23]) for both embedding the
// landmarks into the coordinate space and solving each host's coordinates.
//
// Derivative-free, so it works directly on the non-smooth relative-error
// objectives used by GNP-style embeddings.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace hfc {

/// Objective: maps a parameter vector to a scalar cost.
using Objective = std::function<double(const std::vector<double>&)>;

struct NelderMeadParams {
  std::size_t max_iterations = 2000;
  /// Converged when the span of simplex values is below this.
  double tolerance = 1e-9;
  /// ... and the simplex diameter is below x_tolerance * max(1,
  /// initial_step). A flat-valued but wide simplex shrinks and continues
  /// instead of stopping early (symmetric starts can otherwise stall with
  /// two equal-valued vertices straddling the minimum).
  double x_tolerance = 1e-7;
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
  /// Initial simplex step added to each coordinate of the start point.
  double initial_step = 1.0;
};

struct NelderMeadResult {
  std::vector<double> argmin;
  double value = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Minimise `f` starting from `start`. Throws on an empty start vector.
[[nodiscard]] NelderMeadResult nelder_mead(const Objective& f,
                                           const std::vector<double>& start,
                                           const NelderMeadParams& params = {});

/// Run `restarts` independent minimisations from random starts drawn
/// uniformly from [lo, hi]^dim (plus one from the midpoint) and keep the
/// best. Used for the landmark embedding, whose objective has local minima.
[[nodiscard]] NelderMeadResult nelder_mead_multistart(
    const Objective& f, std::size_t dim, double lo, double hi,
    std::size_t restarts, Rng& rng, const NelderMeadParams& params = {});

}  // namespace hfc
