#include "coords/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.h"

namespace hfc {

namespace {

struct Vertex {
  std::vector<double> x;
  double value;
};

std::vector<double> centroid_excluding_worst(const std::vector<Vertex>& simplex) {
  const std::size_t dim = simplex.front().x.size();
  std::vector<double> c(dim, 0.0);
  for (std::size_t v = 0; v + 1 < simplex.size(); ++v) {
    for (std::size_t i = 0; i < dim; ++i) c[i] += simplex[v].x[i];
  }
  for (double& ci : c) ci /= static_cast<double>(simplex.size() - 1);
  return c;
}

std::vector<double> affine(const std::vector<double>& base,
                           const std::vector<double>& dir, double t) {
  std::vector<double> out(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    out[i] = base[i] + t * (dir[i] - base[i]);
  }
  return out;
}

}  // namespace

NelderMeadResult nelder_mead(const Objective& f,
                             const std::vector<double>& start,
                             const NelderMeadParams& params) {
  require(!start.empty(), "nelder_mead: empty start vector");
  require(params.tolerance > 0.0, "nelder_mead: non-positive tolerance");
  const std::size_t dim = start.size();

  // Initial simplex: start point plus one vertex displaced along each axis.
  std::vector<Vertex> simplex;
  simplex.reserve(dim + 1);
  simplex.push_back({start, f(start)});
  for (std::size_t i = 0; i < dim; ++i) {
    std::vector<double> x = start;
    x[i] += params.initial_step;
    simplex.push_back({x, f(x)});
  }

  const auto by_value = [](const Vertex& a, const Vertex& b) {
    return a.value < b.value;
  };

  const auto diameter = [&simplex, dim]() {
    double d = 0.0;
    for (std::size_t v = 1; v < simplex.size(); ++v) {
      for (std::size_t i = 0; i < dim; ++i) {
        d = std::max(d, std::abs(simplex[v].x[i] - simplex.front().x[i]));
      }
    }
    return d;
  };
  const double x_tol =
      params.x_tolerance * std::max(1.0, std::abs(params.initial_step));

  NelderMeadResult result;
  for (result.iterations = 0; result.iterations < params.max_iterations;
       ++result.iterations) {
    std::sort(simplex.begin(), simplex.end(), by_value);
    const double spread = simplex.back().value - simplex.front().value;
    if (spread < params.tolerance) {
      if (diameter() < x_tol) {
        result.converged = true;
        break;
      }
      // Flat but wide: shrink toward the best vertex and keep going.
      for (std::size_t v = 1; v < simplex.size(); ++v) {
        simplex[v].x = affine(simplex.front().x, simplex[v].x, params.shrink);
        simplex[v].value = f(simplex[v].x);
      }
      continue;
    }

    const std::vector<double> c = centroid_excluding_worst(simplex);
    Vertex& worst = simplex.back();
    const double best_value = simplex.front().value;
    const double second_worst = simplex[simplex.size() - 2].value;

    // Reflection: mirror the worst vertex through the centroid.
    std::vector<double> xr = affine(c, worst.x, -params.reflection);
    const double fr = f(xr);
    if (fr < best_value) {
      // Expansion: keep going in the promising direction.
      std::vector<double> xe = affine(c, worst.x, -params.expansion);
      const double fe = f(xe);
      if (fe < fr) {
        worst = {std::move(xe), fe};
      } else {
        worst = {std::move(xr), fr};
      }
      continue;
    }
    if (fr < second_worst) {
      worst = {std::move(xr), fr};
      continue;
    }
    // Contraction, toward the better of (worst, reflected).
    if (fr < worst.value) {
      std::vector<double> xoc = affine(c, xr, params.contraction);
      const double foc = f(xoc);
      if (foc <= fr) {
        worst = {std::move(xoc), foc};
        continue;
      }
    } else {
      std::vector<double> xic = affine(c, worst.x, params.contraction);
      const double fic = f(xic);
      if (fic < worst.value) {
        worst = {std::move(xic), fic};
        continue;
      }
    }
    // Shrink the whole simplex toward the best vertex.
    for (std::size_t v = 1; v < simplex.size(); ++v) {
      simplex[v].x = affine(simplex.front().x, simplex[v].x, params.shrink);
      simplex[v].value = f(simplex[v].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(), by_value);
  result.argmin = simplex.front().x;
  result.value = simplex.front().value;
  return result;
}

NelderMeadResult nelder_mead_multistart(const Objective& f, std::size_t dim,
                                        double lo, double hi,
                                        std::size_t restarts, Rng& rng,
                                        const NelderMeadParams& params) {
  require(dim > 0, "nelder_mead_multistart: zero dimension");
  require(restarts >= 1, "nelder_mead_multistart: need >= 1 restart");
  require(lo <= hi, "nelder_mead_multistart: empty box");

  NelderMeadResult best;
  best.value = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < restarts; ++r) {
    std::vector<double> start(dim);
    if (r == 0) {
      std::fill(start.begin(), start.end(), (lo + hi) / 2.0);
    } else {
      for (double& s : start) s = rng.uniform_real(lo, hi);
    }
    NelderMeadResult attempt = nelder_mead(f, start, params);
    if (attempt.value < best.value) best = std::move(attempt);
  }
  return best;
}

}  // namespace hfc
