#include "coords/gnp.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/require.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace hfc {

namespace {

/// Delays below this (ms) are clamped in relative-error denominators so a
/// pair of co-located endpoints cannot dominate the objective.
constexpr double kMinDelayMs = 1.0;

double max_entry(const SymMatrix<double>& m) {
  double best = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      best = std::max(best, m.at_unsafe(i, j));
    }
  }
  return best;
}

double squared_rel_error(double estimated, double measured) {
  const double e = (estimated - measured) / std::max(measured, kMinDelayMs);
  return e * e;
}

}  // namespace

CoordinateSystem embed_landmarks(const SymMatrix<double>& landmark_delays,
                                 const GnpParams& params, Rng& rng) {
  HFC_TRACE_SPAN("gnp.embed_landmarks");
  obs::MetricsRegistry::global().counter("gnp.landmark_embeds").add(1);
  const std::size_t m = landmark_delays.size();
  require(m >= 2, "embed_landmarks: need >= 2 landmarks");
  require(params.dimensions >= 1, "embed_landmarks: zero dimensions");
  const std::size_t k = params.dimensions;
  const double scale = std::max(max_entry(landmark_delays), kMinDelayMs);

  // Variables: the m*k landmark coordinates, flattened landmark-major.
  const Objective objective = [&](const std::vector<double>& x) {
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        double sum = 0.0;
        for (std::size_t d = 0; d < k; ++d) {
          const double delta = x[i * k + d] - x[j * k + d];
          sum += delta * delta;
        }
        cost += squared_rel_error(std::sqrt(sum),
                                  landmark_delays.at_unsafe(i, j));
      }
    }
    return cost;
  };

  NelderMeadParams solver = params.solver;
  solver.initial_step = scale / 4.0;
  const NelderMeadResult best = nelder_mead_multistart(
      objective, m * k, 0.0, scale, params.landmark_restarts, rng, solver);

  CoordinateSystem system;
  system.dimensions = k;
  system.landmark_coords.resize(m, Point(k, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t d = 0; d < k; ++d) {
      system.landmark_coords[i][d] = best.argmin[i * k + d];
    }
  }
  return system;
}

Point solve_host(const CoordinateSystem& system,
                 const std::vector<double>& delays_to_landmarks,
                 const GnpParams& params, Rng& rng) {
  HFC_TRACE_SPAN("gnp.solve_host");
  static obs::Counter& solves =
      obs::MetricsRegistry::global().counter("gnp.host_solves");
  solves.add(1);
  require(system.dimensions >= 1, "solve_host: empty coordinate system");
  require(delays_to_landmarks.size() == system.landmark_coords.size(),
          "solve_host: one delay per landmark required");
  const std::size_t k = system.dimensions;

  double scale = kMinDelayMs;
  for (double d : delays_to_landmarks) scale = std::max(scale, d);

  const Objective objective = [&](const std::vector<double>& x) {
    double cost = 0.0;
    for (std::size_t l = 0; l < delays_to_landmarks.size(); ++l) {
      double sum = 0.0;
      for (std::size_t d = 0; d < k; ++d) {
        const double delta = x[d] - system.landmark_coords[l][d];
        sum += delta * delta;
      }
      cost += squared_rel_error(std::sqrt(sum), delays_to_landmarks[l]);
    }
    return cost;
  };

  NelderMeadParams solver = params.solver;
  solver.initial_step = scale / 4.0;
  const NelderMeadResult best = nelder_mead_multistart(
      objective, k, -scale, scale, params.host_restarts, rng, solver);
  return best.argmin;
}

DistanceMap build_distance_map(LatencyOracle& oracle,
                               std::size_t landmark_count,
                               const GnpParams& params, Rng& rng) {
  HFC_TRACE_SPAN("gnp.build_distance_map");
  const auto wall_start = std::chrono::steady_clock::now();
  require(landmark_count >= 2, "build_distance_map: need >= 2 landmarks");
  require(oracle.endpoint_count() > landmark_count,
          "build_distance_map: oracle must hold landmarks plus proxies");
  const std::size_t proxies = oracle.endpoint_count() - landmark_count;
  const std::size_t probes_before = oracle.probe_count();

  // Step 1: landmarks measure one another (minimum of several probes).
  SymMatrix<double> landmark_delays(landmark_count, 0.0);
  for (std::size_t i = 0; i + 1 < landmark_count; ++i) {
    for (std::size_t j = i + 1; j < landmark_count; ++j) {
      landmark_delays.at(i, j) =
          oracle.measure_min_of(i, j, params.probes_per_measurement);
    }
  }

  DistanceMap map;
  // Step 2: embed the landmarks into S.
  map.system = embed_landmarks(landmark_delays, params, rng);

  // Step 3: each proxy measures the landmarks and solves its coordinates.
  // The solves are independent Nelder-Mead runs, the hottest loop of the
  // construction pipeline; proxy p is one parallel task with its own
  // `rng.split(p)` stream (a pure function of the seed, not of how many
  // draws the embedding consumed), so the coordinates are bit-identical
  // for any thread count. The oracle's counter-based noise keeps the
  // measurements deterministic too: each task probes only its own
  // (proxy, landmark) pairs.
  map.proxy_coords.assign(proxies, Point(map.system.dimensions, 0.0));
  parallel_for(proxies, 1, [&](std::size_t p) {
    std::vector<double> to_landmarks(landmark_count);
    for (std::size_t l = 0; l < landmark_count; ++l) {
      to_landmarks[l] = oracle.measure_min_of(landmark_count + p, l,
                                              params.probes_per_measurement);
    }
    Rng host_rng = rng.split(p);
    map.proxy_coords[p] = solve_host(map.system, to_landmarks, params, host_rng);
  });
  map.probes_used = oracle.probe_count() - probes_before;
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("gnp.probes").add(map.probes_used);
  registry
      .histogram("gnp.build_ms",
                 {1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 30000.0})
      .observe(std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count());
  return map;
}

EmbeddingQuality evaluate_embedding(const std::vector<Point>& coords,
                                    const SymMatrix<double>& true_delays) {
  require(coords.size() == true_delays.size(),
          "evaluate_embedding: size mismatch");
  std::vector<double> errors;
  for (std::size_t i = 0; i + 1 < coords.size(); ++i) {
    for (std::size_t j = i + 1; j < coords.size(); ++j) {
      const double truth = true_delays.at_unsafe(i, j);
      if (truth <= 0.0) continue;
      errors.push_back(std::abs(euclidean(coords[i], coords[j]) - truth) /
                       truth);
    }
  }
  EmbeddingQuality q;
  q.mean_rel_error = mean_of(errors);
  q.median_rel_error = percentile(errors, 50.0);
  q.p90_rel_error = percentile(std::move(errors), 90.0);
  return q;
}

}  // namespace hfc
