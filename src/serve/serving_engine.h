// ServingEngine — the high-throughput request-serving front end
// (DESIGN.md §12). Ties the subsystem together:
//
//   publish()  — RCU-style snapshot publication: when the live
//                topology's structure generation has advanced (or the
//                crash set changed), capture a fresh RouteSnapshot and
//                swap it into an atomic shared_ptr. Readers holding the
//                old snapshot keep serving it untouched.
//   serve()    — answer one *wave* of requests against the current
//                snapshot: requests with identical (source, destination,
//                SG) coalesce onto one cache lookup / one CSP solve;
//                distinct misses solve in parallel over the thread pool;
//                results fan back out to every waiter.
//
// Determinism: a wave's outcome — every served path, every serve.*
// counter, the exact cache contents afterwards — is a function of the
// request sequence and the snapshot, never of HFC_THREADS. The wave is
// structured as serial group / serial lookup / parallel solve / serial
// insert phases; the parallel phase writes only per-group slots, so
// thread interleaving cannot reorder anything observable.
//
// serve() itself is externally synchronized (one dispatcher thread per
// engine — the deterministic-wave contract is per call anyway);
// concurrent *readers* that grab current() and route against it
// lock-free are the supported concurrent path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "distance/coord_distance.h"
#include "dynamic/dynamic_overlay.h"
#include "overlay/hfc_topology.h"
#include "overlay/overlay_network.h"
#include "routing/service_path.h"
#include "serve/route_cache.h"
#include "serve/route_snapshot.h"
#include "services/service_graph.h"

namespace hfc::serve {

struct ServeParams {
  std::size_t shards = 16;             ///< HFC_SERVE_SHARDS
  std::size_t capacity_per_shard = 4096;  ///< HFC_SERVE_CACHE

  /// Resolve from the environment knobs (fallbacks above).
  [[nodiscard]] static ServeParams from_env();
};

/// One request's answer plus how the engine produced it.
struct ServedRoute {
  ServicePath path;
  bool cache_hit = false;   ///< replayed from the cache
  bool coalesced = false;   ///< shared another waiter's solve this wave
  std::uint64_t snapshot_generation = 0;  ///< generation it was served at
};

class ServingEngine {
 public:
  /// Serve a static overlay: `net`/`topo`/`dist` are the live objects the
  /// engine re-captures from on publish(); they must outlive the engine.
  /// The constructor publishes the initial snapshot.
  ServingEngine(const OverlayNetwork& net, const HfcTopology& topo,
                const CoordDistanceService& dist,
                ServeParams params = ServeParams::from_env());

  /// Serve a dynamic overlay (incremental churn mode): publish() captures
  /// from its universe-level routing state between mutation batches.
  explicit ServingEngine(DynamicHfcOverlay& overlay,
                         ServeParams params = ServeParams::from_env());

  /// Re-capture and swap the snapshot if the live structure generation
  /// advanced or the crash set differs from the published one; no-op
  /// (and serve.publish_skips) otherwise. Returns whether a new snapshot
  /// was published. Call between mutation batches / fault transitions —
  /// never concurrently with them.
  bool publish() { return publish(last_crashed_); }
  bool publish(std::vector<NodeId> crashed);

  /// The currently published snapshot. Lock-free; callers may route
  /// against it from any thread while the engine publishes newer ones.
  [[nodiscard]] std::shared_ptr<const RouteSnapshot> current() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Serve one wave of requests against the current snapshot. Returns
  /// one ServedRoute per request, positionally.
  [[nodiscard]] std::vector<ServedRoute> serve(
      std::span<const ServiceRequest> wave);

  [[nodiscard]] const ShardedRouteCache& cache() const { return cache_; }
  [[nodiscard]] std::uint64_t crash_epoch() const { return crash_epoch_; }

 private:
  /// Live sources to capture from: either the static triple or the
  /// dynamic overlay (exactly one is set).
  const OverlayNetwork* net_ = nullptr;
  const HfcTopology* topo_ = nullptr;
  const CoordDistanceService* dist_ = nullptr;
  DynamicHfcOverlay* overlay_ = nullptr;

  ServeParams params_;
  ShardedRouteCache cache_;
  std::vector<NodeId> last_crashed_;
  std::uint64_t crash_epoch_ = 0;
  std::atomic<std::shared_ptr<const RouteSnapshot>> snapshot_;
};

}  // namespace hfc::serve
