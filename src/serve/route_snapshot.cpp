#include "serve/route_snapshot.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/require.h"
#include "util/rng.h"

namespace hfc::serve {
namespace {

/// Seed of the per-service fingerprint chains ("Serv"). A service no
/// cluster hosts fingerprints to the bare seeded value, so the in-range
/// and beyond-catalog cases agree.
constexpr std::uint64_t kFingerprintSeed = 0x53657276ull;

[[nodiscard]] std::uint64_t empty_fingerprint(std::uint64_t service) {
  return splitmix64(kFingerprintSeed ^ service);
}

/// Chain over the ascending member ids of one cluster that host `sid`.
/// Hosts joining, leaving, or swapping identity all change the hash;
/// churn among the cluster's non-host members does not — that is the
/// point (DESIGN.md §12): a cached route's CSP verdict reads only which
/// hosts a candidate cluster offers, not who else lives there.
[[nodiscard]] std::uint64_t host_set_hash(const OverlayNetwork& net,
                                          const std::vector<NodeId>& members,
                                          ServiceId sid) {
  std::uint64_t h = kFingerprintSeed;
  for (const NodeId m : members) {
    const auto& services = net.services_at(m);
    if (std::binary_search(services.begin(), services.end(), sid)) {
      h = splitmix64(h ^ static_cast<std::uint64_t>(m.value()));
    }
  }
  return h;
}

}  // namespace

std::shared_ptr<const RouteSnapshot> RouteSnapshot::capture(
    const OverlayNetwork& net, const HfcTopology& topo,
    const CoordDistanceService& dist, std::vector<NodeId> crashed,
    std::uint64_t crash_epoch) {
  require(net.size() == topo.node_count(),
          "RouteSnapshot::capture: network / topology node count mismatch");
  require(dist.size() >= net.size(),
          "RouteSnapshot::capture: distance tier smaller than the network");

  std::sort(crashed.begin(), crashed.end());
  crashed.erase(std::unique(crashed.begin(), crashed.end()), crashed.end());
  for (NodeId node : crashed) {
    require(node.valid() && node.idx() < net.size(),
            "RouteSnapshot::capture: crashed node outside the network");
  }

  std::shared_ptr<RouteSnapshot> snap(new RouteSnapshot());
  snap->crashed_ = std::move(crashed);
  snap->crash_epoch_ = crash_epoch;
  snap->net_ = std::make_unique<OverlayNetwork>(net);
  snap->dist_ = std::make_unique<CoordDistanceService>(dist.coords());
  snap->topo_ = topo.clone_frozen(snap->dist_->fn());

  snap->up_.assign(snap->net_->size(), 1);
  for (NodeId node : snap->crashed_) snap->up_[node.idx()] = 0;

  // Bake the degraded border table: resolve every live pair whose stored
  // border has a crashed end to its surviving pair, once, so readers pay
  // O(1) per BorderView resolution instead of a member re-scan per
  // request. Pairs with no survivor keep their stored slots — the
  // reader's per-request scan then reports them disconnected exactly like
  // the live router would.
  if (!snap->crashed_.empty()) {
    static obs::Counter& baked =
        obs::MetricsRegistry::global().counter("serve.baked_borders");
    const auto up = [&snap](NodeId n) { return snap->up_[n.idx()] != 0; };
    HfcTopology& frozen = *snap->topo_;
    const std::size_t slots = frozen.cluster_count();
    for (std::size_t a = 0; a + 1 < slots; ++a) {
      const ClusterId ca(static_cast<std::int32_t>(a));
      if (!frozen.live(ca)) continue;
      for (std::size_t b = a + 1; b < slots; ++b) {
        const ClusterId cb(static_cast<std::int32_t>(b));
        if (!frozen.live(cb)) continue;
        const NodeId in_a = frozen.border(ca, cb);
        const NodeId in_b = frozen.border(cb, ca);
        if (!in_a.valid() || !in_b.valid()) continue;
        if (up(in_a) && up(in_b)) continue;
        const HfcTopology::SurvivingPair pair =
            frozen.surviving_border_pair(ca, cb, up);
        if (!pair.found) continue;
        frozen.override_border_pair(ca, cb, pair.in_from, pair.in_toward);
        baked.add(1);
      }
    }
  }

  snap->router_ = std::make_unique<HierarchicalServiceRouter>(
      *snap->net_, *snap->topo_, *snap->dist_);
  snap->router_->sync_with_topology();

  // Per-service candidate-set fingerprints over the capture-time catalog
  // (the largest service id the placement mentions).
  std::size_t catalog = 0;
  for (std::size_t v = 0; v < snap->net_->size(); ++v) {
    const auto& services =
        snap->net_->services_at(NodeId(static_cast<std::int32_t>(v)));
    if (!services.empty()) {
      catalog = std::max(catalog, services.back().idx() + 1);
    }
  }
  snap->fingerprints_.resize(catalog);
  for (std::size_t s = 0; s < catalog; ++s) {
    const ServiceId sid(static_cast<std::int32_t>(s));
    std::uint64_t h = empty_fingerprint(s);
    for (ClusterId c : snap->router_->clusters_hosting(sid)) {
      // Per hosting cluster: identity, the exact host set it offers, and
      // its border epoch. Everything the CSP reads about a *candidate*
      // cluster is covered (host ids -> host coordinates are immutable
      // per id; border epoch -> entry/exit nodes and external lengths);
      // clusters a path *traverses* are pinned separately by the cache's
      // generation tags. Non-host membership churn in a hosting cluster
      // deliberately leaves the chain unchanged so cached routes survive
      // it.
      h = splitmix64(h ^ static_cast<std::uint64_t>(c.idx()));
      h = splitmix64(h ^ host_set_hash(*snap->net_, snap->topo_->members(c),
                                       sid));
      h = splitmix64(h ^ snap->topo_->border_epoch(c));
    }
    snap->fingerprints_[s] = h;
  }

  static obs::Counter& captures =
      obs::MetricsRegistry::global().counter("serve.snapshot_captures");
  captures.add(1);
  return snap;
}

std::uint64_t RouteSnapshot::service_fingerprint(ServiceId service) const {
  require(service.valid(), "RouteSnapshot::service_fingerprint: invalid id");
  if (service.idx() < fingerprints_.size()) return fingerprints_[service.idx()];
  return empty_fingerprint(service.idx());
}

ServicePath RouteSnapshot::route(const ServiceRequest& request) const {
  require(request.source.valid() && request.source.idx() < net_->size() &&
              request.destination.valid() &&
              request.destination.idx() < net_->size(),
          "RouteSnapshot::route: request endpoints outside the snapshot");
  require(cluster_of(request.source).valid() &&
              cluster_of(request.destination).valid(),
          "RouteSnapshot::route: request endpoints must be clustered");
  if (crashed_.empty()) return router_->route(request);
  require(up(request.source) && up(request.destination),
          "RouteSnapshot::route: request endpoints must be up");
  return router_
      ->route_degraded(request,
                       [this](NodeId n) { return up_[n.idx()] != 0; })
      .path;
}

}  // namespace hfc::serve
