#include "serve/route_cache.h"

#include <algorithm>

#include "util/require.h"
#include "util/rng.h"

namespace hfc::serve {

RequestKey RequestKey::make(const ServiceRequest& request,
                            const RouteSnapshot& snap) {
  const ClusterId src = snap.cluster_of(request.source);
  const ClusterId dst = snap.cluster_of(request.destination);
  require(src.valid() && dst.valid(),
          "RequestKey::make: request endpoints must be clustered");

  RequestKey key;
  key.source = request.source;
  key.destination = request.destination;
  key.sg_encoding = request.graph.canonical_encoding();

  // Shard selection: the ISSUE-level (src cluster, SG hash, dst cluster)
  // triple, so requests of one cluster pair with one SG co-locate.
  std::uint64_t mix = splitmix64(0x524b6579ull ^ request.graph.structural_hash());
  mix = splitmix64(mix ^ static_cast<std::uint64_t>(src.idx()));
  mix = splitmix64(mix ^ static_cast<std::uint64_t>(dst.idx()));
  key.shard_mix = mix;

  // Bucket hash folds the concrete endpoints back in for the shard map.
  mix = splitmix64(mix ^ static_cast<std::uint64_t>(request.source.idx()));
  mix = splitmix64(mix ^ static_cast<std::uint64_t>(request.destination.idx()));
  key.bucket_mix = mix;
  return key;
}

CachedRoute make_cached_route(ServicePath path, const ServiceRequest& request,
                              const RouteSnapshot& snap) {
  CachedRoute entry;
  entry.crash_epoch = snap.crash_epoch();

  std::vector<ClusterId> clusters = {snap.cluster_of(request.source),
                                     snap.cluster_of(request.destination)};
  for (const ServiceHop& hop : path.hops) {
    clusters.push_back(snap.cluster_of(hop.proxy));
  }
  std::sort(clusters.begin(), clusters.end());
  clusters.erase(std::unique(clusters.begin(), clusters.end()),
                 clusters.end());
  entry.cluster_tags.reserve(clusters.size());
  for (ClusterId c : clusters) {
    require(c.valid(), "make_cached_route: unclustered hop proxy");
    entry.cluster_tags.emplace_back(c, snap.cluster_generation(c));
  }

  const std::vector<ServiceId> services = request.graph.distinct_services();
  entry.service_tags.reserve(services.size());
  for (ServiceId s : services) {
    entry.service_tags.emplace_back(s, snap.service_fingerprint(s));
  }

  entry.path = std::move(path);
  return entry;
}

bool route_current(const CachedRoute& entry, const RouteSnapshot& snap) {
  if (entry.crash_epoch != snap.crash_epoch()) return false;
  for (const auto& [cluster, gen] : entry.cluster_tags) {
    if (!snap.cluster_generation_is(cluster, gen)) return false;
  }
  for (const auto& [service, fp] : entry.service_tags) {
    if (snap.service_fingerprint(service) != fp) return false;
  }
  return true;
}

ShardedRouteCache::ShardedRouteCache(std::size_t shards,
                                     std::size_t capacity_per_shard)
    : capacity_(capacity_per_shard) {
  require(shards >= 1, "ShardedRouteCache: need at least one shard");
  require(capacity_per_shard >= 1,
          "ShardedRouteCache: need capacity of at least one entry per shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t ShardedRouteCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

std::optional<CachedRoute> ShardedRouteCache::find(
    const RequestKey& key) const {
  const Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

ShardedRouteCache::InsertResult ShardedRouteCache::insert(
    const RequestKey& key, CachedRoute entry) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);

  InsertResult result;
  entry.insert_seq = ++shard.next_seq;
  const auto [it, inserted] = shard.map.insert_or_assign(key, std::move(entry));
  result.replaced = !inserted;
  shard.fifo.emplace_back(key, it->second.insert_seq);

  while (shard.map.size() > capacity_) {
    require(!shard.fifo.empty(),
            "ShardedRouteCache: FIFO lost track of a resident entry");
    auto [victim, seq] = std::move(shard.fifo.front());
    shard.fifo.pop_front();
    const auto vit = shard.map.find(victim);
    // Skip stale records: the key was refreshed after this record was
    // queued (its live seq is newer) or already evicted.
    if (vit == shard.map.end() || vit->second.insert_seq != seq) continue;
    shard.map.erase(vit);
    ++result.evicted;
  }
  return result;
}

void ShardedRouteCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->fifo.clear();
  }
}

}  // namespace hfc::serve
