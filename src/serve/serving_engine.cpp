#include "serve/serving_engine.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace hfc::serve {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Millisecond bucket bounds shared by the serve.* latency histograms.
[[nodiscard]] std::vector<double> latency_bounds() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
          0.5,   1.0,    2.5,   5.0,  10.0,  25.0, 50.0, 100.0};
}

}  // namespace

ServeParams ServeParams::from_env() {
  ServeParams params;
  params.shards = env_size_t("HFC_SERVE_SHARDS", params.shards, 1);
  params.capacity_per_shard =
      env_size_t("HFC_SERVE_CACHE", params.capacity_per_shard, 1);
  return params;
}

ServingEngine::ServingEngine(const OverlayNetwork& net,
                             const HfcTopology& topo,
                             const CoordDistanceService& dist,
                             ServeParams params)
    : net_(&net),
      topo_(&topo),
      dist_(&dist),
      params_(params),
      cache_(params.shards, params.capacity_per_shard) {
  publish({});
}

ServingEngine::ServingEngine(DynamicHfcOverlay& overlay, ServeParams params)
    : overlay_(&overlay),
      params_(params),
      cache_(params.shards, params.capacity_per_shard) {
  require(overlay.churn_mode() == ChurnMode::kIncremental,
          "ServingEngine: the dynamic overlay must run incremental churn "
          "(universe-level routing state to snapshot)");
  publish({});
}

bool ServingEngine::publish(std::vector<NodeId> crashed) {
  static obs::Counter& publishes =
      obs::MetricsRegistry::global().counter("serve.publishes");
  static obs::Counter& skips =
      obs::MetricsRegistry::global().counter("serve.publish_skips");
  static obs::Histogram& publish_ms = obs::MetricsRegistry::global().histogram(
      "serve.publish_ms", latency_bounds());

  std::sort(crashed.begin(), crashed.end());
  crashed.erase(std::unique(crashed.begin(), crashed.end()), crashed.end());

  const OverlayNetwork& net = overlay_ ? overlay_->universe_network() : *net_;
  const HfcTopology& topo = overlay_ ? overlay_->universe_topology() : *topo_;
  const CoordDistanceService& dist =
      overlay_ ? overlay_->universe_distance() : *dist_;

  const std::shared_ptr<const RouteSnapshot> cur = current();
  const bool crash_changed = crashed != last_crashed_;
  if (cur && cur->structure_generation() == topo.structure_generation() &&
      !crash_changed) {
    skips.add(1);
    return false;
  }

  if (crash_changed) ++crash_epoch_;
  const auto start = Clock::now();
  std::shared_ptr<const RouteSnapshot> snap =
      RouteSnapshot::capture(net, topo, dist, crashed, crash_epoch_);
  last_crashed_ = std::move(crashed);
  snapshot_.store(std::move(snap), std::memory_order_release);
  publishes.add(1);
  publish_ms.observe(ms_since(start));
  return true;
}

std::vector<ServedRoute> ServingEngine::serve(
    std::span<const ServiceRequest> wave) {
  static obs::Counter& requests =
      obs::MetricsRegistry::global().counter("serve.requests");
  static obs::Counter& waves =
      obs::MetricsRegistry::global().counter("serve.waves");
  static obs::Counter& cache_hits =
      obs::MetricsRegistry::global().counter("serve.cache_hits");
  static obs::Counter& cache_misses =
      obs::MetricsRegistry::global().counter("serve.cache_misses");
  static obs::Counter& cache_stale =
      obs::MetricsRegistry::global().counter("serve.cache_stale");
  static obs::Counter& coalesced_count =
      obs::MetricsRegistry::global().counter("serve.coalesced");
  static obs::Counter& solves =
      obs::MetricsRegistry::global().counter("serve.solves");
  static obs::Counter& inserts =
      obs::MetricsRegistry::global().counter("serve.cache_inserts");
  static obs::Counter& evictions =
      obs::MetricsRegistry::global().counter("serve.cache_evictions");
  static obs::Histogram& request_ms = obs::MetricsRegistry::global().histogram(
      "serve.request_ms", latency_bounds());
  static obs::Histogram& solve_ms_hist =
      obs::MetricsRegistry::global().histogram("serve.solve_ms",
                                               latency_bounds());
  static obs::Histogram& wave_ms = obs::MetricsRegistry::global().histogram(
      "serve.wave_ms", latency_bounds());

  std::vector<ServedRoute> out(wave.size());
  if (wave.empty()) return out;

  const auto wave_start = Clock::now();
  const std::shared_ptr<const RouteSnapshot> snap_ptr = current();
  const RouteSnapshot& snap = *snap_ptr;
  const std::uint64_t generation = snap.structure_generation();

  // Phase 1 (serial): coalesce requests with identical full identity into
  // groups, in first-appearance order. The map's nodes are stable, so
  // groups reference the keys in place.
  struct Group {
    const RequestKey* key = nullptr;
    std::vector<std::size_t> indices;
    ServicePath path;
    bool hit = false;
    double group_ms = 0.0;
  };
  std::vector<Group> groups;
  std::unordered_map<RequestKey, std::size_t, RequestKeyHash> identity;
  identity.reserve(wave.size() * 2);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    RequestKey key = RequestKey::make(wave[i], snap);
    const auto [it, fresh] = identity.try_emplace(std::move(key), groups.size());
    if (fresh) {
      groups.emplace_back();
      groups.back().key = &it->first;
    }
    groups[it->second].indices.push_back(i);
  }

  // Phase 2 (serial): cache lookups against the pre-wave contents.
  std::vector<std::size_t> misses;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto start = Clock::now();
    std::optional<CachedRoute> found = cache_.find(*groups[g].key);
    if (found && route_current(*found, snap)) {
      groups[g].hit = true;
      groups[g].path = std::move(found->path);
      groups[g].group_ms = ms_since(start);
    } else {
      if (found) cache_stale.add(1);
      misses.push_back(g);
    }
  }

  // Phase 3 (parallel): one CSP solve per distinct missing identity. Each
  // task reads the immutable snapshot and writes only its own group —
  // bit-identical results for any thread count. Chunked so a flush wave's
  // worth of sub-millisecond solves amortizes the per-task dispatch cost.
  std::vector<double> solve_durations(misses.size(), 0.0);
  parallel_for(misses.size(), 8, [&](std::size_t i) {
    Group& group = groups[misses[i]];
    const auto start = Clock::now();
    group.path = snap.route(wave[group.indices.front()]);
    solve_durations[i] = ms_since(start);
  });

  // Phase 4 (serial): insert the solves in first-appearance order so the
  // cache contents (and FIFO eviction order) are wave-deterministic.
  std::size_t evicted = 0;
  for (std::size_t i = 0; i < misses.size(); ++i) {
    Group& group = groups[misses[i]];
    group.group_ms = solve_durations[i];
    solve_ms_hist.observe(solve_durations[i]);
    const ShardedRouteCache::InsertResult res = cache_.insert(
        *group.key,
        make_cached_route(group.path, wave[group.indices.front()], snap));
    evicted += res.evicted;
  }

  // Phase 5 (serial): fan the group results back out to every waiter.
  std::uint64_t hit_requests = 0;
  std::uint64_t miss_requests = 0;
  std::uint64_t coalesced_requests = 0;
  for (const Group& group : groups) {
    for (std::size_t j = 0; j < group.indices.size(); ++j) {
      ServedRoute& served = out[group.indices[j]];
      served.path = group.path;
      served.cache_hit = group.hit;
      served.coalesced = !group.hit && j > 0;
      served.snapshot_generation = generation;
      request_ms.observe(group.group_ms);
    }
    if (group.hit) {
      hit_requests += group.indices.size();
    } else {
      miss_requests += group.indices.size();
      coalesced_requests += group.indices.size() - 1;
    }
  }

  requests.add(wave.size());
  waves.add(1);
  cache_hits.add(hit_requests);
  cache_misses.add(miss_requests);
  coalesced_count.add(coalesced_requests);
  solves.add(misses.size());
  inserts.add(misses.size());
  evictions.add(evicted);
  wave_ms.observe(ms_since(wave_start));
  return out;
}

}  // namespace hfc::serve
