// ShardedRouteCache — generation-invalidated route memoization
// (DESIGN.md §12).
//
// Routes are pure functions of (source, destination, service graph) and
// the routing state a snapshot froze. The cache stores solved paths
// keyed by that identity and tags every entry with everything its
// exactness depends on:
//
//   - the generation stamp of each cluster the path traverses (endpoint
//     clusters plus every hop's cluster) — any membership change of a
//     traversed cluster bumps its stamp and kills the entry;
//   - the candidate-set fingerprint of each service the SG mentions —
//     a hosting cluster appearing or disappearing, a host joining or
//     leaving one, or a candidate cluster's border pair moving all
//     change the fingerprint, so CSP candidate drift invalidates the
//     entry even when the cached path never touched the drifted cluster.
//     Fingerprints are keyed on per-cluster host sets and border epochs
//     (not whole-cluster generations), so non-host churn inside a
//     hosting cluster leaves entries alive — only routes whose
//     cluster_tags actually traverse the churned cluster re-solve;
//   - the crash epoch — any crash/recover transition bumps it, which
//     soundly (if conservatively) flushes everything, since crash state
//     changes routing without advancing topology generations.
//
// An entry whose tags all still match the current snapshot replays a
// route byte-identical to what a fresh solve would produce (the CSP and
// intra-cluster solvers are deterministic functions of exactly the
// tagged state). Anything else is reported stale and re-solved.
//
// Sharding: entries hash to one of N independent shards by the
// (source cluster, SG structural hash, destination cluster) triple, each
// shard a mutex-guarded map with FIFO eviction (re-inserts refresh
// recency via stale queue records that are skipped on pop). The
// ServingEngine serializes cache phases per wave, so the mutexes are
// uncontended there; they make the cache safe for out-of-band probes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "routing/service_path.h"
#include "serve/route_snapshot.h"
#include "services/service_graph.h"
#include "util/ids.h"

namespace hfc::serve {

/// Full identity of a cacheable request plus its precomputed hashes.
struct RequestKey {
  NodeId source;
  NodeId destination;
  std::string sg_encoding;   ///< ServiceGraph::canonical_encoding()
  std::uint64_t shard_mix = 0;   ///< (src cluster, SG hash, dst cluster)
  std::uint64_t bucket_mix = 0;  ///< shard_mix folded with the endpoints

  /// Build the key for `request` as seen by `snap` (which supplies the
  /// endpoint clusters for the shard hash).
  [[nodiscard]] static RequestKey make(const ServiceRequest& request,
                                       const RouteSnapshot& snap);

  friend bool operator==(const RequestKey& a, const RequestKey& b) {
    return a.source == b.source && a.destination == b.destination &&
           a.sg_encoding == b.sg_encoding;
  }
};

struct RequestKeyHash {
  [[nodiscard]] std::size_t operator()(const RequestKey& k) const noexcept {
    return static_cast<std::size_t>(k.bucket_mix);
  }
};

/// A cached solve with the tags pinning it to its routing inputs.
struct CachedRoute {
  ServicePath path;
  std::uint64_t crash_epoch = 0;
  /// (traversed cluster, generation at solve time), ascending by cluster.
  std::vector<std::pair<ClusterId, std::uint64_t>> cluster_tags;
  /// (SG service, candidate-set fingerprint at solve time), ascending.
  std::vector<std::pair<ServiceId, std::uint64_t>> service_tags;
  std::uint64_t insert_seq = 0;  ///< shard FIFO bookkeeping
};

/// Derive the tags for a solved path: traversed clusters = endpoint
/// clusters plus the cluster of every hop proxy.
[[nodiscard]] CachedRoute make_cached_route(ServicePath path,
                                            const ServiceRequest& request,
                                            const RouteSnapshot& snap);

/// True when every tag of `entry` still matches `snap` — replaying the
/// entry is exact.
[[nodiscard]] bool route_current(const CachedRoute& entry,
                                 const RouteSnapshot& snap);

class ShardedRouteCache {
 public:
  /// `shards` independent maps of `capacity_per_shard` entries each
  /// (both >= 1; knobs HFC_SERVE_SHARDS / HFC_SERVE_CACHE).
  ShardedRouteCache(std::size_t shards, std::size_t capacity_per_shard);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t capacity_per_shard() const { return capacity_; }
  /// Total entries across shards (O(shards)).
  [[nodiscard]] std::size_t size() const;

  /// Copy of the entry under `key`, if present (tag validation is the
  /// caller's job — see route_current).
  [[nodiscard]] std::optional<CachedRoute> find(const RequestKey& key) const;

  struct InsertResult {
    bool replaced = false;      ///< overwrote an existing entry
    std::size_t evicted = 0;    ///< entries FIFO-evicted to make room
  };
  /// Insert or refresh `entry` under `key`.
  InsertResult insert(const RequestKey& key, CachedRoute entry);

  void clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<RequestKey, CachedRoute, RequestKeyHash> map;
    /// FIFO of (key, seq); records whose seq no longer matches the live
    /// entry are stale (the key was refreshed later) and skipped on pop.
    std::deque<std::pair<RequestKey, std::uint64_t>> fifo;
    std::uint64_t next_seq = 0;
  };

  [[nodiscard]] Shard& shard_of(const RequestKey& key) {
    return *shards_[key.shard_mix % shards_.size()];
  }
  [[nodiscard]] const Shard& shard_of(const RequestKey& key) const {
    return *shards_[key.shard_mix % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_ = 0;
};

}  // namespace hfc::serve
