// RouteSnapshot — the immutable unit of the serving engine (DESIGN.md §12).
//
// The routers answer requests against live mutable state (topology
// membership, border tables, SCT_C), which forces request threads to
// synchronize with churn maintenance. A RouteSnapshot freezes everything
// a route computation reads — the overlay placement, its own coordinate
// tier, a clone of the HFC topology (borders, liveness, generation
// stamps), a router whose SCT_C is derived from that frozen membership,
// and the crash state — into one immutable object published RCU-style by
// the ServingEngine (atomic shared_ptr swap). Reader threads route
// against whatever snapshot they loaded with no locks and no risk of a
// torn topology; the publisher captures a fresh snapshot whenever
// `HfcTopology::structure_generation()` advances or the crash set
// changes.
//
// Degradation baking: when the snapshot carries crashed nodes, border
// pairs whose stored end is down are resolved to the surviving pair
// (HfcTopology::surviving_border_pair) ONCE at capture and written into
// the frozen border table, so per-request BorderView resolution is O(1)
// instead of an O(|a|·|b|) member re-scan per request. Pairs with no
// surviving member keep their stored slots, which reproduces the live
// router's per-request not-found handling exactly. Routes served from a
// snapshot are byte-identical to what the live router returns for the
// same membership and crash set.
//
// Cache invalidation inputs: the snapshot precomputes, per service, a
// fingerprint over the (hosting cluster, host set, border epoch) chain.
// A cached route is exact iff its endpoint clusters' generations, its
// traversed clusters' generations, every fingerprint of a service its SG
// mentions, and the crash epoch all still match — see ShardedRouteCache.
// Keying the per-service chain on host sets (which member ids host the
// service) plus border epochs, instead of whole-cluster generations,
// means churn among a hosting cluster's *non-host* members no longer
// perturbs the fingerprint: only the cluster_tags of routes that
// actually traverse the churned cluster go stale.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "distance/coord_distance.h"
#include "overlay/hfc_topology.h"
#include "overlay/overlay_network.h"
#include "routing/hierarchical_router.h"
#include "routing/service_path.h"
#include "services/service_graph.h"
#include "util/ids.h"

namespace hfc::serve {

class RouteSnapshot {
 public:
  /// Freeze the current routing state. `crashed` (any order, duplicates
  /// tolerated) are the down proxies baked into the view; `crash_epoch`
  /// is the publisher's monotone stamp for the crash set (entries cached
  /// under another epoch are invalid). The live objects are only read
  /// during the call — the snapshot owns deep copies and has no lifetime
  /// ties to them afterwards.
  [[nodiscard]] static std::shared_ptr<const RouteSnapshot> capture(
      const OverlayNetwork& net, const HfcTopology& topo,
      const CoordDistanceService& dist, std::vector<NodeId> crashed,
      std::uint64_t crash_epoch);

  RouteSnapshot(const RouteSnapshot&) = delete;
  RouteSnapshot& operator=(const RouteSnapshot&) = delete;

  /// Topology-wide generation this snapshot froze at.
  [[nodiscard]] std::uint64_t structure_generation() const {
    return topo_->structure_generation();
  }
  [[nodiscard]] std::uint64_t crash_epoch() const { return crash_epoch_; }
  /// Crashed proxies, sorted ascending, deduplicated.
  [[nodiscard]] const std::vector<NodeId>& crashed() const { return crashed_; }
  [[nodiscard]] bool up(NodeId node) const {
    return node.valid() && node.idx() < up_.size() && up_[node.idx()] != 0;
  }

  [[nodiscard]] std::size_t node_count() const { return net_->size(); }
  [[nodiscard]] ClusterId cluster_of(NodeId node) const {
    return topo_->cluster_of(node);
  }
  /// Generation stamp of one cluster slot at capture time.
  [[nodiscard]] std::uint64_t cluster_generation(ClusterId cluster) const {
    return topo_->generation(cluster);
  }
  /// True when `cluster` exists in this snapshot with exactly `gen`.
  [[nodiscard]] bool cluster_generation_is(ClusterId cluster,
                                           std::uint64_t gen) const {
    return cluster.valid() && cluster.idx() < topo_->cluster_count() &&
           topo_->generation(cluster) == gen;
  }

  /// Fingerprint of `service`'s candidate set: a splitmix64 chain over
  /// the ascending (hosting cluster, host-set hash, border epoch)
  /// triples, seeded by the service id. Equal fingerprints imply the
  /// service's CSP candidate clusters, the exact hosts each offers, and
  /// each candidate's border configuration are unchanged — non-host
  /// membership churn inside a hosting cluster does not alter the chain.
  /// Services no cluster hosts (including ids beyond the snapshot's
  /// catalog) fingerprint to the seeded empty chain, so "still unhosted"
  /// also matches exactly.
  [[nodiscard]] std::uint64_t service_fingerprint(ServiceId service) const;

  /// Route against the frozen view: the plain hierarchical pipeline when
  /// the snapshot has no crashes, graceful-degradation routing (with the
  /// baked surviving borders) when it does. Thread-safe: concurrent
  /// callers share only immutable state. Endpoints must be clustered in
  /// this snapshot (and up, when crashed).
  [[nodiscard]] ServicePath route(const ServiceRequest& request) const;

  /// The frozen sub-objects, for tests and introspection.
  [[nodiscard]] const HfcTopology& topology() const { return *topo_; }
  [[nodiscard]] const OverlayNetwork& network() const { return *net_; }
  [[nodiscard]] const HierarchicalServiceRouter& router() const {
    return *router_;
  }

 private:
  RouteSnapshot() = default;

  std::vector<NodeId> crashed_;
  std::uint64_t crash_epoch_ = 0;
  std::vector<char> up_;  ///< up_[node] = 1 unless crashed

  /// Ownership order matters: net_/dist_ outlive topo_ (whose distance
  /// functor reads dist_), which outlives router_.
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<CoordDistanceService> dist_;
  std::unique_ptr<HfcTopology> topo_;
  std::unique_ptr<HierarchicalServiceRouter> router_;

  /// fingerprints_[s] for services inside the capture-time catalog;
  /// out-of-range services derive the empty chain on demand.
  std::vector<std::uint64_t> fingerprints_;
};

}  // namespace hfc::serve
