// Observability subsystem — scoped trace spans.
//
// `HFC_TRACE_SPAN("gnp.solve")` opens an RAII span: wall-clock timed with
// the steady clock, nested via a per-thread depth, and recorded on close
// into a bounded in-memory ring buffer. Span names are the same
// dot-separated taxonomy the metrics registry uses, so a chrome trace and
// a metrics snapshot line up by prefix.
//
// Tracing is off unless the process runs with `HFC_TRACE=1`; a disabled
// span is a single branch on a cached flag (no clock read, no buffer
// write), which keeps instrumented hot paths at production speed. When
// enabled, the buffer is flushed at process exit as a chrome://tracing /
// Perfetto-compatible JSON file (`HFC_TRACE_FILE`, default
// "hfc_trace.json"). Once the buffer's capacity (`HFC_TRACE_BUF` events,
// default 131072) is reached, later spans are counted as dropped rather
// than recorded, so early construction phases survive in full.
//
// Defining HFC_OBS_NO_TRACING compiles spans out entirely (zero branches)
// for builds that must not carry even the flag check.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace hfc::obs {

/// One closed span. Times are nanoseconds since the process's trace epoch
/// (first trace-infrastructure use).
struct TraceEvent {
  const char* name = nullptr;  ///< static string from the HFC_TRACE_SPAN site
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;  ///< dense per-process thread index
  std::uint32_t depth = 0;   ///< nesting depth on that thread (0 = top level)
};

/// True when span recording is active. Initialised from HFC_TRACE=1 at
/// first use (which also arms the at-exit chrome-trace writer); tests may
/// override it at runtime via set_enabled_for_testing.
[[nodiscard]] bool trace_enabled() noexcept;

/// Bounded global ring of closed spans.
class TraceBuffer {
 public:
  [[nodiscard]] static TraceBuffer& global();

  void record(const TraceEvent& event) noexcept;

  /// Events recorded so far (at most `capacity`), in completion order.
  /// Call only while no spans are closing (e.g. after parallel work has
  /// joined); the exporter runs at exit when everything is quiescent.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t dropped() const noexcept;

  /// Drop all recorded events (testing).
  void clear() noexcept;
  /// Replace the buffer with an empty one of `capacity` events (testing).
  void resize_for_testing(std::size_t capacity);

  /// Emit the chrome://tracing JSON document ("traceEvents" array of
  /// complete "X" events, microsecond timestamps).
  void write_chrome_trace(std::ostream& out) const;
  /// write_chrome_trace to `path`; returns false if the file can't be
  /// opened.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  explicit TraceBuffer(std::size_t capacity);
  std::size_t capacity_ = 0;
  std::unique_ptr<TraceEvent[]> ring_;
  std::atomic<std::size_t> next_{0};
};

/// Runtime override of the HFC_TRACE flag, for tests that exercise the
/// span machinery without re-exec'ing with the environment set. Does not
/// arm or disarm the at-exit writer.
void set_trace_enabled_for_testing(bool enabled);

/// Nanoseconds since the process trace epoch.
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// RAII span; use through HFC_TRACE_SPAN. `name` must outlive the
/// process (string literals at the call sites).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (trace_enabled()) open(name);
  }
  ~TraceSpan() {
    if (name_ != nullptr) close();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(const char* name) noexcept;
  void close() noexcept;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace hfc::obs

#if defined(HFC_OBS_NO_TRACING)
#define HFC_TRACE_SPAN(name) ((void)0)
#else
#define HFC_OBS_CONCAT_IMPL(a, b) a##b
#define HFC_OBS_CONCAT(a, b) HFC_OBS_CONCAT_IMPL(a, b)
#define HFC_TRACE_SPAN(name) \
  ::hfc::obs::TraceSpan HFC_OBS_CONCAT(hfc_obs_span_, __LINE__)(name)
#endif
