// Minimal JSON emission helpers shared by the observability exporters
// (metrics snapshots, chrome-trace files) and bench/common.h.
//
// Only the writing direction is needed anywhere in the repo, so this stays
// a header of two functions instead of a JSON library: escaping per RFC
// 8259 §7, and number formatting that never emits the tokens `nan`/`inf`
// (invalid JSON) — non-finite values degrade to null.
#pragma once

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace hfc::obs {

/// Escape `raw` for placement between double quotes in a JSON document:
/// quote, backslash, and all control characters below 0x20 (the only
/// characters RFC 8259 requires escaping). Everything else — including
/// multi-byte UTF-8 sequences — passes through untouched.
inline std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  static constexpr char kHex[] = "0123456789abcdef";
  for (char ch : raw) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += "\\u00";
          out += kHex[c >> 4];
          out += kHex[c & 0xf];
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Format a double as a JSON value: fixed precision for finite values,
/// `null` for NaN / infinity (which are not representable in JSON).
inline std::string json_number(double value, int decimals = 3) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

inline std::string json_number(std::uint64_t value) {
  return std::to_string(value);
}

}  // namespace hfc::obs
