// Observability subsystem — process-wide metrics registry.
//
// The paper's claims are cost claims (measurement probes §3.1, protocol
// messages and service-names carried §4, path-efficiency penalties §6.2),
// so the repo needs one uniform place where every layer records what it
// spent. This registry holds three metric kinds under dot-separated
// hierarchical names (`<subsystem>.<quantity>`, e.g.
// "protocol.local_messages", "gnp.host_solves"):
//
//   Counter   — monotone event count. The hot-path `add` is one relaxed
//               atomic increment on a per-thread shard (no lock, no CAS
//               retry under contention); `value` sums the shards. Integer
//               sums are order-independent, so counter totals are *exact*
//               and identical for serial and parallel runs of the same
//               deterministic work — the same guarantee the PR-1 thread
//               pool gives for computed results.
//   Gauge     — last-written double (plus atomic add), for instantaneous
//               levels like queue depth or convergence time.
//   Histogram — fixed upper-bound buckets plus count and sum, for
//               durations and sizes. Bucket counts are exact; the sum is
//               a floating accumulation and therefore only
//               order-deterministic in serial runs.
//
// Registration is thread-safe and idempotent: the first `counter(name)`
// creates, later calls return the same object, and references stay valid
// for the process lifetime (hot call sites cache them in local statics).
// `snapshot()` returns all metrics sorted by name; `write_json` emits the
// snapshot with escaped keys and stable ordering so exported files diff
// cleanly across runs.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hfc::obs {

namespace detail {
/// Stable per-thread shard index in [0, kShards), assigned round-robin at
/// first use so pool workers spread across shards.
[[nodiscard]] std::size_t this_thread_shard() noexcept;
inline constexpr std::size_t kShards = 16;
}  // namespace detail

/// Monotone event counter, sharded per thread to keep the hot-path `add`
/// a single uncontended relaxed increment.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::this_thread_shard()].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, detail::kShards> shards_;
};

/// Last-value gauge with atomic add, for levels rather than events.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit +inf overflow bucket, so there are bounds.size() + 1
/// buckets in total.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_.value(); }
  [[nodiscard]] double sum() const noexcept { return sum_.value(); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<Counter[]> buckets_;  // bounds_.size() + 1 entries
  Counter count_;
  Gauge sum_;
};

/// One metric's state at snapshot time. `count` carries the counter value
/// or the histogram observation count; `value` carries the gauge value or
/// the histogram sum.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;
  double value = 0.0;
  std::vector<double> bounds;           // histogram only
  std::vector<std::uint64_t> buckets;   // histogram only
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented layer records into.
  [[nodiscard]] static MetricsRegistry& global();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Throws std::invalid_argument if `name` is empty or is
  /// already registered as a different metric kind (or, for histograms,
  /// with different bounds).
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds);

  /// All metrics, sorted by name.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Emit the snapshot as one JSON object with escaped keys in sorted
  /// order. `indent` spaces prefix every member line (0 = compact-ish but
  /// still one member per line).
  void write_json(std::ostream& out, int indent = 2) const;

  /// Zero every registered metric (registration survives). For tests and
  /// benches that measure deltas from a clean slate.
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Lookup helpers over snapshot vectors, for benches that report deltas
/// between two registry snapshots. Missing names read as zero.
[[nodiscard]] std::uint64_t counter_value(
    const std::vector<MetricSnapshot>& snap, std::string_view name);
[[nodiscard]] std::uint64_t counter_delta(
    const std::vector<MetricSnapshot>& before,
    const std::vector<MetricSnapshot>& after, std::string_view name);
/// Histogram sum delta (e.g. accumulated milliseconds of a stage).
[[nodiscard]] double sum_delta(const std::vector<MetricSnapshot>& before,
                               const std::vector<MetricSnapshot>& after,
                               std::string_view name);

/// Quantile estimate from a histogram snapshot (q in [0, 1]): linear
/// interpolation inside the bucket holding the q-th observation, the
/// standard fixed-bucket estimator. Observations in the +inf overflow
/// bucket clamp to the last finite bound. Returns 0 for empty histograms
/// and for snapshots that are not histograms. Used for the serving
/// engine's p50/p99 latency reporting (serve.* histograms).
[[nodiscard]] double histogram_quantile(const MetricSnapshot& snap, double q);

/// Same, looking `name` up in a snapshot vector (0 when missing).
[[nodiscard]] double histogram_quantile(
    const std::vector<MetricSnapshot>& snap, std::string_view name, double q);

}  // namespace hfc::obs
