#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>

#include "obs/json.h"

namespace hfc::obs {

namespace {

constexpr std::size_t kDefaultCapacity = 131072;

std::atomic<bool> g_enabled{false};

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Dense thread index: the main thread and each pool worker get a small
/// stable id, which chrome://tracing renders as one row per thread.
std::uint32_t this_thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local std::uint32_t t_span_depth = 0;

void write_trace_at_exit() {
  const char* path = std::getenv("HFC_TRACE_FILE");
  const std::string file = path != nullptr ? path : "hfc_trace.json";
  if (TraceBuffer::global().write_chrome_trace_file(file)) {
    std::cerr << "[hfc-trace] wrote " << TraceBuffer::global().events().size()
              << " spans to " << file;
    if (TraceBuffer::global().dropped() > 0) {
      std::cerr << " (" << TraceBuffer::global().dropped()
                << " dropped after the buffer filled)";
    }
    std::cerr << "\n";
  } else {
    std::cerr << "[hfc-trace] could not write " << file << "\n";
  }
}

bool init_trace_flag() {
  const char* v = std::getenv("HFC_TRACE");
  const bool on = v != nullptr && std::string(v) == "1";
  if (on) {
    trace_epoch();                 // pin the epoch before any span
    (void)TraceBuffer::global();   // construct the buffer before registering
                                   // the exit hook, so it outlives the flush
    std::atexit(write_trace_at_exit);
  }
  g_enabled.store(on, std::memory_order_relaxed);
  return true;
}

}  // namespace

bool trace_enabled() noexcept {
  static const bool initialised = init_trace_flag();
  (void)initialised;
  return g_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled_for_testing(bool enabled) {
  (void)trace_enabled();  // run the env-based init first so it can't overwrite
  g_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity), ring_(new TraceEvent[capacity]) {}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* buffer = [] {
    std::size_t capacity = kDefaultCapacity;
    if (const char* v = std::getenv("HFC_TRACE_BUF")) {
      const unsigned long long parsed = std::strtoull(v, nullptr, 10);
      if (parsed >= 1) capacity = static_cast<std::size_t>(parsed);
    }
    return new TraceBuffer(capacity);  // never freed: spans may close during
                                       // static destruction
  }();
  return *buffer;
}

void TraceBuffer::record(const TraceEvent& event) noexcept {
  const std::size_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= capacity_) return;  // full: count as dropped, keep the head
  ring_[slot] = event;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  const std::size_t n =
      std::min(next_.load(std::memory_order_relaxed), capacity_);
  return std::vector<TraceEvent>(ring_.get(), ring_.get() + n);
}

std::size_t TraceBuffer::dropped() const noexcept {
  const std::size_t n = next_.load(std::memory_order_relaxed);
  return n > capacity_ ? n - capacity_ : 0;
}

void TraceBuffer::clear() noexcept {
  next_.store(0, std::memory_order_relaxed);
}

void TraceBuffer::resize_for_testing(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_ = std::make_unique<TraceEvent[]>(capacity_);
  next_.store(0, std::memory_order_relaxed);
}

void TraceBuffer::write_chrome_trace(std::ostream& out) const {
  std::vector<TraceEvent> spans = events();
  // Stable start-time order: chrome://tracing accepts any order, but a
  // sorted file is readable raw and diffs more cleanly.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : spans) {
    out << (first ? "\n" : ",\n");
    first = false;
    // Complete ("X") events; timestamps are microseconds in this format.
    out << " {\"name\": \"" << json_escape(e.name != nullptr ? e.name : "?")
        << "\", \"ph\": \"X\", \"ts\": "
        << json_number(static_cast<double>(e.start_ns) / 1000.0)
        << ", \"dur\": "
        << json_number(static_cast<double>(e.duration_ns) / 1000.0)
        << ", \"pid\": 1, \"tid\": " << e.thread
        << ", \"args\": {\"depth\": " << e.depth << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

bool TraceBuffer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

void TraceSpan::open(const char* name) noexcept {
  name_ = name;
  depth_ = t_span_depth++;
  start_ns_ = trace_now_ns();
}

void TraceSpan::close() noexcept {
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = trace_now_ns() - start_ns_;
  event.thread = this_thread_index();
  event.depth = depth_;
  --t_span_depth;
  TraceBuffer::global().record(event);
}

}  // namespace hfc::obs
