#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <ostream>

#include "obs/json.h"
#include "util/require.h"

namespace hfc::obs {

namespace detail {

std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  require(std::is_sorted(bounds_.begin(), bounds_.end()),
          "Histogram: bounds must be ascending");
  buckets_ = std::make_unique<Counter[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].add(1);
  count_.add(1);
  sum_.add(v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t b = 0; b < out.size(); ++b) out[b] = buckets_[b].value();
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t b = 0; b <= bounds_.size(); ++b) buckets_[b].reset();
  count_.reset();
  sum_.reset();
}

namespace {

struct Entry {
  MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // std::map keeps names sorted, so snapshots and JSON need no re-sort,
  // and node-based storage keeps metric addresses stable across inserts.
  std::map<std::string, Entry, std::less<>> entries;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed:
  // hot call sites cache references in local statics and worker threads
  // may outlive static destruction order.
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  require(!name.empty(), "MetricsRegistry::counter: empty name");
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Entry e;
    e.kind = MetricSnapshot::Kind::kCounter;
    e.counter = std::make_unique<Counter>();
    it = impl_->entries.emplace(std::string(name), std::move(e)).first;
  }
  require(it->second.kind == MetricSnapshot::Kind::kCounter,
          "MetricsRegistry: '" + std::string(name) +
              "' already registered as a different kind");
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  require(!name.empty(), "MetricsRegistry::gauge: empty name");
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Entry e;
    e.kind = MetricSnapshot::Kind::kGauge;
    e.gauge = std::make_unique<Gauge>();
    it = impl_->entries.emplace(std::string(name), std::move(e)).first;
  }
  require(it->second.kind == MetricSnapshot::Kind::kGauge,
          "MetricsRegistry: '" + std::string(name) +
              "' already registered as a different kind");
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  require(!name.empty(), "MetricsRegistry::histogram: empty name");
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Entry e;
    e.kind = MetricSnapshot::Kind::kHistogram;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    return *impl_->entries.emplace(std::string(name), std::move(e))
                .first->second.histogram;
  }
  require(it->second.kind == MetricSnapshot::Kind::kHistogram,
          "MetricsRegistry: '" + std::string(name) +
              "' already registered as a different kind");
  require(it->second.histogram->bounds() == bounds,
          "MetricsRegistry: '" + std::string(name) +
              "' re-registered with different bounds");
  return *it->second.histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<MetricSnapshot> out;
  out.reserve(impl_->entries.size());
  for (const auto& [name, entry] : impl_->entries) {
    MetricSnapshot s;
    s.name = name;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricSnapshot::Kind::kCounter:
        s.count = entry.counter->value();
        break;
      case MetricSnapshot::Kind::kGauge:
        s.value = entry.gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        s.count = entry.histogram->count();
        s.value = entry.histogram->sum();
        s.bounds = entry.histogram->bounds();
        s.buckets = entry.histogram->bucket_counts();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::write_json(std::ostream& out, int indent) const {
  const std::vector<MetricSnapshot> snap = snapshot();
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  out << "{";
  bool first = true;
  for (const MetricSnapshot& s : snap) {
    out << (first ? "\n" : ",\n") << pad << "  \"" << json_escape(s.name)
        << "\": ";
    first = false;
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        out << json_number(s.count);
        break;
      case MetricSnapshot::Kind::kGauge:
        out << json_number(s.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out << "{\"count\": " << json_number(s.count)
            << ", \"sum\": " << json_number(s.value) << ", \"bounds\": [";
        for (std::size_t b = 0; b < s.bounds.size(); ++b) {
          out << (b ? ", " : "") << json_number(s.bounds[b]);
        }
        out << "], \"buckets\": [";
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          out << (b ? ", " : "") << json_number(s.buckets[b]);
        }
        out << "]}";
        break;
      }
    }
  }
  if (!first) out << "\n" << pad;
  out << "}";
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  for (auto& [name, entry] : impl_->entries) {
    switch (entry.kind) {
      case MetricSnapshot::Kind::kCounter: entry.counter->reset(); break;
      case MetricSnapshot::Kind::kGauge: entry.gauge->reset(); break;
      case MetricSnapshot::Kind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

namespace {

const MetricSnapshot* find(const std::vector<MetricSnapshot>& snap,
                           std::string_view name) {
  for (const MetricSnapshot& s : snap) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

std::uint64_t counter_value(const std::vector<MetricSnapshot>& snap,
                            std::string_view name) {
  const MetricSnapshot* s = find(snap, name);
  return s == nullptr ? 0 : s->count;
}

std::uint64_t counter_delta(const std::vector<MetricSnapshot>& before,
                            const std::vector<MetricSnapshot>& after,
                            std::string_view name) {
  return counter_value(after, name) - counter_value(before, name);
}

double sum_delta(const std::vector<MetricSnapshot>& before,
                 const std::vector<MetricSnapshot>& after,
                 std::string_view name) {
  const MetricSnapshot* b = find(before, name);
  const MetricSnapshot* a = find(after, name);
  return (a == nullptr ? 0.0 : a->value) - (b == nullptr ? 0.0 : b->value);
}

double histogram_quantile(const MetricSnapshot& snap, double q) {
  if (snap.kind != MetricSnapshot::Kind::kHistogram || snap.count == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(snap.count);
  double seen = 0.0;
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    const double in_bucket = static_cast<double>(snap.buckets[b]);
    if (seen + in_bucket < target || in_bucket == 0.0) {
      seen += in_bucket;
      continue;
    }
    if (b >= snap.bounds.size()) break;  // overflow bucket: clamp below
    const double lo = b == 0 ? 0.0 : snap.bounds[b - 1];
    const double hi = snap.bounds[b];
    return lo + (hi - lo) * ((target - seen) / in_bucket);
  }
  // Everything at or past the overflow bucket clamps to the last finite
  // bound (the histogram cannot resolve further).
  return snap.bounds.empty() ? 0.0 : snap.bounds.back();
}

double histogram_quantile(const std::vector<MetricSnapshot>& snap,
                          std::string_view name, double q) {
  const MetricSnapshot* s = find(snap, name);
  return s == nullptr ? 0.0 : histogram_quantile(*s, q);
}

}  // namespace hfc::obs
