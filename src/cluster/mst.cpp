#include "cluster/mst.h"

#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/require.h"

namespace hfc {

std::vector<MstEdge> mst_dense(std::size_t n, const DistanceFn& distance) {
  HFC_TRACE_SPAN("cluster.mst");
  obs::MetricsRegistry::global().counter("cluster.mst_builds").add(1);
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, kInf);     // cheapest edge into the tree
  std::vector<std::size_t> parent(n, 0);

  in_tree[0] = true;
  for (std::size_t v = 1; v < n; ++v) {
    best[v] = distance(0, v);
    parent[v] = 0;
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t next = n;
    double next_cost = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < next_cost) {
        next = v;
        next_cost = best[v];
      }
    }
    ensure(next < n, "mst_dense: graph distance returned infinity");
    in_tree[next] = true;
    edges.push_back(MstEdge{parent[next], next, next_cost});
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v]) {
        const double d = distance(next, v);
        if (d < best[v]) {
          best[v] = d;
          parent[v] = next;
        }
      }
    }
  }
  return edges;
}

std::vector<MstEdge> mst_dense(const DistanceService& distance) {
  return mst_dense(distance.size(), [&distance](std::size_t i, std::size_t j) {
    return distance.at(i, j);
  });
}

std::vector<MstEdge> euclidean_mst(const std::vector<Point>& points) {
  return mst_dense(points.size(), [&points](std::size_t i, std::size_t j) {
    return euclidean(points[i], points[j]);
  });
}

double total_length(const std::vector<MstEdge>& edges) {
  double sum = 0.0;
  for (const MstEdge& e : edges) sum += e.length;
  return sum;
}

}  // namespace hfc
