#include "cluster/mst.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <mutex>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace hfc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Disjoint-set over node indices (path-halving, no ranks — union order
/// below is deterministic anyway).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// False when a and b were already connected.
  bool unite(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// True when candidate (d, a, b) improves on the incumbent under the
/// canonical lexicographic edge order.
[[nodiscard]] bool edge_improves(double d, std::size_t a, std::size_t b,
                                 double bd, std::size_t ba, std::size_t bb) {
  if (d != bd) return d < bd;
  if (a != ba) return a < ba;
  return b < bb;
}

/// Warn once per process for a bad HFC_MST_ALGO value, mirroring the
/// HFC_SPATIAL string-knob behaviour.
void warn_bad_algo(const char* raw) {
  static std::mutex mu;
  static bool warned = false;
  std::lock_guard<std::mutex> lk(mu);
  if (warned) return;
  warned = true;
  std::cerr << "[hfc] warning: ignoring HFC_MST_ALGO=\"" << raw
            << "\" (expected rounds|pruned); using default pruned\n";
}

}  // namespace

MstAlgo mst_algo() {
  const char* raw = std::getenv("HFC_MST_ALGO");
  if (raw == nullptr || std::strcmp(raw, "pruned") == 0) {
    return MstAlgo::kPruned;
  }
  if (std::strcmp(raw, "rounds") == 0) return MstAlgo::kRounds;
  warn_bad_algo(raw);
  return MstAlgo::kPruned;
}

const char* mst_algo_name(MstAlgo algo) {
  switch (algo) {
    case MstAlgo::kRounds:
      return "rounds";
    case MstAlgo::kPruned:
      return "pruned";
  }
  return "?";
}

std::vector<MstEdge> mst_dense(std::size_t n, const DistanceFn& distance) {
  HFC_TRACE_SPAN("cluster.mst");
  obs::MetricsRegistry::global().counter("cluster.mst_builds").add(1);
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, kInf);     // cheapest edge into the tree
  std::vector<std::size_t> parent(n, 0);
  std::uint64_t evals = 0;

  in_tree[0] = true;
  for (std::size_t v = 1; v < n; ++v) {
    best[v] = distance(0, v);
    ++evals;
    parent[v] = 0;
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t next = n;
    double next_cost = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < next_cost) {
        next = v;
        next_cost = best[v];
      }
    }
    ensure(next < n, "mst_dense: graph distance returned infinity");
    in_tree[next] = true;
    edges.push_back(MstEdge{parent[next], next, next_cost});
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v]) {
        const double d = distance(next, v);
        ++evals;
        if (d < best[v]) {
          best[v] = d;
          parent[v] = next;
        }
      }
    }
  }
  obs::MetricsRegistry::global()
      .counter("cluster.mst_candidate_pairs")
      .add(evals);
  return edges;
}

std::vector<MstEdge> mst_dense(const DistanceService& distance) {
  const std::vector<Point>* coords = distance.coord_view();
  if (coords != nullptr && spatial_enabled(coords->size())) {
    if (group_pipeline_enabled(coords->size())) {
      return euclidean_mst_grouped(*coords, spatial_mode());
    }
    return euclidean_mst_spatial(*coords, spatial_mode());
  }

  HFC_TRACE_SPAN("cluster.mst");
  obs::MetricsRegistry::global().counter("cluster.mst_builds").add(1);
  const std::size_t n = distance.size();
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> parent(n, 0);
  std::uint64_t evals = 0;

  // One whole-row fetch per added node keeps the truth tier's bounded
  // row cache on a sequential access pattern (n fetches total) instead
  // of the per-pair at() canonicalization, which revisits every row
  // O(n) times and evicts it in between.
  in_tree[0] = true;
  {
    const auto row = distance.row(0);
    for (std::size_t v = 1; v < n; ++v) {
      best[v] = (*row)[v];
      ++evals;
      parent[v] = 0;
    }
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t next = n;
    double next_cost = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < next_cost) {
        next = v;
        next_cost = best[v];
      }
    }
    ensure(next < n, "mst_dense: graph distance returned infinity");
    in_tree[next] = true;
    edges.push_back(MstEdge{parent[next], next, next_cost});
    const auto row = distance.row(next);
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v]) {
        const double d = (*row)[v];
        ++evals;
        if (d < best[v]) {
          best[v] = d;
          parent[v] = next;
        }
      }
    }
  }
  obs::MetricsRegistry::global()
      .counter("cluster.mst_candidate_pairs")
      .add(evals);
  return edges;
}

std::vector<MstEdge> euclidean_mst(const std::vector<Point>& points) {
  if (spatial_enabled(points.size())) {
    if (group_pipeline_enabled(points.size())) {
      return euclidean_mst_grouped(points, spatial_mode());
    }
    return euclidean_mst_spatial(points, spatial_mode());
  }
  return mst_dense(points.size(), [&points](std::size_t i, std::size_t j) {
    return euclidean(points[i], points[j]);
  });
}

std::vector<MstEdge> euclidean_mst_spatial(const std::vector<Point>& points,
                                           SpatialMode mode) {
  return euclidean_mst_spatial(points, mode, mst_algo());
}

std::vector<MstEdge> euclidean_mst_spatial(const std::vector<Point>& points,
                                           SpatialMode mode, MstAlgo algo) {
  require(mode != SpatialMode::kOff,
          "euclidean_mst_spatial: mode kOff has no index");
  HFC_TRACE_SPAN("cluster.mst");
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("cluster.mst_builds").add(1);
  const std::size_t n = points.size();
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  const std::unique_ptr<SpatialIndex> index = make_spatial_index(mode, points);
  UnionFind uf(n);
  std::vector<std::int32_t> labels(n, 0);

  // Candidate light edge per component root, canonical (d, a, b)-minimal.
  std::vector<double> cand_d(n, kInf);
  std::vector<std::size_t> cand_a(n, 0);
  std::vector<std::size_t> cand_b(n, 0);

  // rounds-mode scratch: one hit + stats slot per point.
  std::vector<SpatialHit> hits;
  std::vector<QueryStats> stats;
  if (algo == MstAlgo::kRounds) {
    hits.resize(n);
    stats.resize(n);
  }

  // pruned-mode scratch: CSR member lists grouped by component. Rebuilt
  // every round; `root_slot` maps a root id to its compact component
  // index, `comp_roots` lists roots in order of smallest member.
  std::vector<std::int32_t> root_slot;
  std::vector<std::size_t> comp_roots;
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> members;
  std::vector<QueryStats> comp_stats;
  if (algo == MstAlgo::kPruned) {
    root_slot.assign(n, -1);
    members.resize(n);
  }
  QueryStats total;

  // Borůvka: every round each component selects its cheapest outgoing
  // edge and the selected edges are applied serially. The (d, a, b)
  // total order on edges makes the selection — and with it the final
  // tree — deterministic even under exact distance ties.
  while (edges.size() + 1 < n) {
    for (std::size_t v = 0; v < n; ++v) {
      labels[v] = static_cast<std::int32_t>(uf.find(v));
    }
    index->retag(labels);

    if (algo == MstAlgo::kRounds) {
      // Every point queries with an infinite bound; a serial pass
      // reduces the n hits to one candidate per component.
      parallel_for(n, 256, [&](std::size_t v) {
        hits[v] = index->nearest_foreign(points[v],
                                         labels[static_cast<std::size_t>(v)],
                                         kInf, stats[v]);
      });
      for (std::size_t v = 0; v < n; ++v) {
        const SpatialHit& hit = hits[v];
        ensure(hit.found(), "euclidean_mst_spatial: disconnected point set");
        const std::size_t u = static_cast<std::size_t>(hit.id);
        const std::size_t a = std::min(v, u);
        const std::size_t b = std::max(v, u);
        const std::size_t root = static_cast<std::size_t>(labels[v]);
        if (edge_improves(hit.dist, a, b, cand_d[root], cand_a[root],
                          cand_b[root])) {
          cand_d[root] = hit.dist;
          cand_a[root] = a;
          cand_b[root] = b;
        }
      }
    } else {
      // Group members by component (a stable counting sort, so each
      // component's member list is ascending), then scan each component
      // sequentially with a shrinking inclusive bound: once a candidate
      // edge is held, later members only need to beat its distance, so
      // their k-d descents cut off almost immediately. Components scan
      // in parallel; each writes only its own cand_* slot, so the sweep
      // is deterministic for any thread count.
      std::size_t num_comps = 0;
      comp_roots.clear();
      for (std::size_t v = 0; v < n; ++v) {
        const auto root = static_cast<std::size_t>(labels[v]);
        if (root_slot[root] < 0) {
          root_slot[root] = static_cast<std::int32_t>(num_comps++);
          comp_roots.push_back(root);
        }
      }
      offsets.assign(num_comps + 1, 0);
      for (std::size_t v = 0; v < n; ++v) {
        const auto slot =
            static_cast<std::size_t>(root_slot[static_cast<std::size_t>(
                labels[v])]);
        ++offsets[slot + 1];
      }
      for (std::size_t c = 0; c < num_comps; ++c) {
        offsets[c + 1] += offsets[c];
      }
      {
        std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
        for (std::size_t v = 0; v < n; ++v) {
          const auto slot =
              static_cast<std::size_t>(root_slot[static_cast<std::size_t>(
                  labels[v])]);
          members[cursor[slot]++] = v;
        }
      }
      comp_stats.assign(num_comps, QueryStats{});
      parallel_for(num_comps, 16, [&](std::size_t c) {
        const std::size_t root = comp_roots[c];
        const auto label = static_cast<std::int32_t>(root);
        double best_d = kInf;
        std::size_t best_a = 0;
        std::size_t best_b = 0;
        QueryStats& st = comp_stats[c];
        for (std::size_t m = offsets[c]; m < offsets[c + 1]; ++m) {
          const std::size_t v = members[m];
          const SpatialHit hit =
              index->nearest_foreign(points[v], label, best_d, st);
          if (!hit.found()) continue;
          const std::size_t u = static_cast<std::size_t>(hit.id);
          const std::size_t a = std::min(v, u);
          const std::size_t b = std::max(v, u);
          if (edge_improves(hit.dist, a, b, best_d, best_a, best_b)) {
            best_d = hit.dist;
            best_a = a;
            best_b = b;
          }
        }
        cand_d[root] = best_d;
        cand_a[root] = best_a;
        cand_b[root] = best_b;
      });
      for (std::size_t c = 0; c < num_comps; ++c) {
        ensure(cand_d[comp_roots[c]] != kInf,
               "euclidean_mst_spatial: disconnected point set");
        total += comp_stats[c];
        root_slot[comp_roots[c]] = -1;
      }
    }

    const std::size_t before = edges.size();
    for (std::size_t root = 0; root < n; ++root) {
      if (cand_d[root] == kInf) continue;
      if (uf.unite(cand_a[root], cand_b[root])) {
        edges.push_back(MstEdge{cand_a[root], cand_b[root], cand_d[root]});
      }
      cand_d[root] = kInf;
    }
    ensure(edges.size() > before, "euclidean_mst_spatial: no progress");
  }

  for (const QueryStats& s : stats) total += s;
  registry.counter("cluster.mst_candidate_pairs").add(total.point_evals);
  registry.counter("spatial.nodes_visited").add(total.nodes_visited);

  std::sort(edges.begin(), edges.end(), [](const MstEdge& x, const MstEdge& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  return edges;
}

double total_length(const std::vector<MstEdge>& edges) {
  double sum = 0.0;
  for (const MstEdge& e : edges) sum += e.length;
  return sum;
}

}  // namespace hfc
