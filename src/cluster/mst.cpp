#include "cluster/mst.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace hfc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Disjoint-set over node indices (path-halving, no ranks — union order
/// below is deterministic anyway).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// False when a and b were already connected.
  bool unite(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// True when candidate (d, a, b) improves on the incumbent under the
/// canonical lexicographic edge order.
[[nodiscard]] bool edge_improves(double d, std::size_t a, std::size_t b,
                                 double bd, std::size_t ba, std::size_t bb) {
  if (d != bd) return d < bd;
  if (a != ba) return a < ba;
  return b < bb;
}

}  // namespace

std::vector<MstEdge> mst_dense(std::size_t n, const DistanceFn& distance) {
  HFC_TRACE_SPAN("cluster.mst");
  obs::MetricsRegistry::global().counter("cluster.mst_builds").add(1);
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, kInf);     // cheapest edge into the tree
  std::vector<std::size_t> parent(n, 0);
  std::uint64_t evals = 0;

  in_tree[0] = true;
  for (std::size_t v = 1; v < n; ++v) {
    best[v] = distance(0, v);
    ++evals;
    parent[v] = 0;
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t next = n;
    double next_cost = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < next_cost) {
        next = v;
        next_cost = best[v];
      }
    }
    ensure(next < n, "mst_dense: graph distance returned infinity");
    in_tree[next] = true;
    edges.push_back(MstEdge{parent[next], next, next_cost});
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v]) {
        const double d = distance(next, v);
        ++evals;
        if (d < best[v]) {
          best[v] = d;
          parent[v] = next;
        }
      }
    }
  }
  obs::MetricsRegistry::global()
      .counter("cluster.mst_candidate_pairs")
      .add(evals);
  return edges;
}

std::vector<MstEdge> mst_dense(const DistanceService& distance) {
  const std::vector<Point>* coords = distance.coord_view();
  if (coords != nullptr && spatial_enabled(coords->size())) {
    return euclidean_mst_spatial(*coords, spatial_mode());
  }

  HFC_TRACE_SPAN("cluster.mst");
  obs::MetricsRegistry::global().counter("cluster.mst_builds").add(1);
  const std::size_t n = distance.size();
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> parent(n, 0);
  std::uint64_t evals = 0;

  // One whole-row fetch per added node keeps the truth tier's bounded
  // row cache on a sequential access pattern (n fetches total) instead
  // of the per-pair at() canonicalization, which revisits every row
  // O(n) times and evicts it in between.
  in_tree[0] = true;
  {
    const auto row = distance.row(0);
    for (std::size_t v = 1; v < n; ++v) {
      best[v] = (*row)[v];
      ++evals;
      parent[v] = 0;
    }
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t next = n;
    double next_cost = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < next_cost) {
        next = v;
        next_cost = best[v];
      }
    }
    ensure(next < n, "mst_dense: graph distance returned infinity");
    in_tree[next] = true;
    edges.push_back(MstEdge{parent[next], next, next_cost});
    const auto row = distance.row(next);
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v]) {
        const double d = (*row)[v];
        ++evals;
        if (d < best[v]) {
          best[v] = d;
          parent[v] = next;
        }
      }
    }
  }
  obs::MetricsRegistry::global()
      .counter("cluster.mst_candidate_pairs")
      .add(evals);
  return edges;
}

std::vector<MstEdge> euclidean_mst(const std::vector<Point>& points) {
  if (spatial_enabled(points.size())) {
    return euclidean_mst_spatial(points, spatial_mode());
  }
  return mst_dense(points.size(), [&points](std::size_t i, std::size_t j) {
    return euclidean(points[i], points[j]);
  });
}

std::vector<MstEdge> euclidean_mst_spatial(const std::vector<Point>& points,
                                           SpatialMode mode) {
  require(mode != SpatialMode::kOff,
          "euclidean_mst_spatial: mode kOff has no index");
  HFC_TRACE_SPAN("cluster.mst");
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("cluster.mst_builds").add(1);
  const std::size_t n = points.size();
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  const std::unique_ptr<SpatialIndex> index = make_spatial_index(mode, points);
  UnionFind uf(n);
  std::vector<std::int32_t> labels(n, 0);
  std::vector<SpatialHit> hits(n);
  std::vector<QueryStats> stats(n);

  // Candidate light edge per component root, canonical (d, a, b)-minimal.
  std::vector<double> cand_d(n, kInf);
  std::vector<std::size_t> cand_a(n, 0);
  std::vector<std::size_t> cand_b(n, 0);

  // Borůvka: every round each component selects its cheapest outgoing
  // edge and the selected edges are applied serially. The (d, a, b)
  // total order on edges makes the selection — and with it the final
  // tree — deterministic even under exact distance ties.
  while (edges.size() + 1 < n) {
    for (std::size_t v = 0; v < n; ++v) {
      labels[v] = static_cast<std::int32_t>(uf.find(v));
    }
    index->retag(labels);
    parallel_for(n, 256, [&](std::size_t v) {
      hits[v] = index->nearest_foreign(points[v],
                                       labels[static_cast<std::size_t>(v)],
                                       kInf, stats[v]);
    });

    for (std::size_t v = 0; v < n; ++v) {
      const SpatialHit& hit = hits[v];
      ensure(hit.found(), "euclidean_mst_spatial: disconnected point set");
      const std::size_t u = static_cast<std::size_t>(hit.id);
      const std::size_t a = std::min(v, u);
      const std::size_t b = std::max(v, u);
      const std::size_t root = static_cast<std::size_t>(labels[v]);
      if (edge_improves(hit.dist, a, b, cand_d[root], cand_a[root],
                        cand_b[root])) {
        cand_d[root] = hit.dist;
        cand_a[root] = a;
        cand_b[root] = b;
      }
    }
    const std::size_t before = edges.size();
    for (std::size_t root = 0; root < n; ++root) {
      if (cand_d[root] == kInf) continue;
      if (uf.unite(cand_a[root], cand_b[root])) {
        edges.push_back(MstEdge{cand_a[root], cand_b[root], cand_d[root]});
      }
      cand_d[root] = kInf;
    }
    ensure(edges.size() > before, "euclidean_mst_spatial: no progress");
  }

  QueryStats total;
  for (const QueryStats& s : stats) total += s;
  registry.counter("cluster.mst_candidate_pairs").add(total.point_evals);
  registry.counter("spatial.nodes_visited").add(total.nodes_visited);

  std::sort(edges.begin(), edges.end(), [](const MstEdge& x, const MstEdge& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  return edges;
}

double total_length(const std::vector<MstEdge>& edges) {
  double sum = 0.0;
  for (const MstEdge& e : edges) sum += e.length;
  return sum;
}

}  // namespace hfc
