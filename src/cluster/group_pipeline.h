// Group-local construction pipeline (DESIGN.md §14).
//
// The bounded-fanout hierarchy is partition-local by design: leaf
// clusters come from spatially coherent median-partition cells. The
// pipeline exploits that locality for the construction sweep itself —
// each cell contracts its own Borůvka forest over a small,
// DynamicSpatialSet-backed local index, and only the residual inter-cell
// merging runs against the global index, pruned by per-point lower
// bounds the local phase seeds. The result is bit-identical to the
// single global sweep for any HFC_THREADS (the selection gates and the
// MST dispatch itself live in cluster/mst.h: GroupPipelineMode,
// euclidean_mst_grouped).
//
// This header adds the group-scoped entry points the churn seam needs:
// MST and Zahn clustering over the live ids of a DynamicSpatialSet, so
// multilevel maintenance can repair one group's clustering without
// touching the rest of the overlay. Both are exact at any mutation-
// buffer state — live ids are materialised and solved over a compacted
// copy, so tombstone-heavy sets answer identically to a freshly loaded
// one.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/zahn.h"
#include "spatial/dynamic_set.h"

namespace hfc {

/// Euclidean MST over the live ids of `set`, returned in global node
/// ids (canonical: a < b, sorted ascending by (a, b)). The live subset
/// is remapped order-preservingly, so the tree equals the MST of the
/// same points presented alone. Empty for fewer than two live ids.
[[nodiscard]] std::vector<MstEdge> euclidean_mst_of_set(
    const DynamicSpatialSet& set, const std::vector<Point>& coords);

/// Zahn clustering of the live ids of `set`. The returned assignment is
/// sized coords.size(); nodes outside the set get an invalid ClusterId.
/// Cluster ids are dense in first-seen ascending-member order, exactly
/// as `cluster_points` labels the same subset presented alone.
[[nodiscard]] Clustering cluster_set(const DynamicSpatialSet& set,
                                     const std::vector<Point>& coords,
                                     const ZahnParams& params = {});

}  // namespace hfc
