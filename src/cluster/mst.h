// Minimum spanning tree over a dense distance function.
//
// The Zahn clustering (paper §3.2) works on the Euclidean MST of the proxy
// coordinates. Three tiers build it (DESIGN.md §11):
//
//   * Prim over a distance callback — O(n^2) evaluations, no structure
//     assumed beyond symmetry. The only option for non-geometric
//     distances, and the fastest below a few hundred points, where a
//     spatial index costs more to build than it saves.
//   * Prim over a DistanceService — the same scan restructured to fetch
//     each added node's whole row once (n row fetches total), so the
//     truth tier's bounded row cache is read sequentially instead of
//     thrashed.
//   * Borůvka over a spatial index (`euclidean_mst_spatial`) — each round
//     tags the index with the current components and finds, per component,
//     its cheapest outgoing edge; components shrink geometrically, so the
//     whole build is O(n log n) nearest-neighbour work. This is what
//     `euclidean_mst` and the coordinate-tier `mst_dense` dispatch to once
//     `spatial_enabled(n)` holds (default: n >= 256 with HFC_SPATIAL !=
//     off), and it is the tier that carries Zahn clustering to the
//     1M-proxy scale (bench_topology_scaling).
//
// The Borůvka tier has two sweep strategies behind HFC_MST_ALGO
// (DESIGN.md §13):
//
//   rounds — every point independently asks for its nearest foreign
//     point with an infinite bound, and a serial pass reduces the n hits
//     to one candidate per component. Simple, embarrassingly parallel,
//     but each query pays the full k-d descent even when its component
//     already holds a much closer outgoing edge.
//   pruned — points are grouped by component and scanned sequentially
//     within it, passing the component's best candidate distance so far
//     as the (inclusive) query bound. The bound shrinks as candidates
//     improve, so most member queries cut off after a few node visits;
//     components scan in parallel, writing disjoint candidate slots.
//
// Both strategies produce bit-identical trees: the inclusive-bound
// contract (spatial_index.h) returns candidates at exactly the bound, so
// every hit that could win the per-component (d, a, b) minimisation is
// still seen, and hits the bound excludes are exactly those the rounds
// reduction would discard. `pruned` is the default; `rounds` remains as
// the A/B baseline the bench and equivalence tests pin.
//
// Equivalence across tiers: all evaluate the same `euclidean()` doubles,
// and with distinct pairwise distances the MST is unique, so Prim and
// Borůvka return the same edge set (Borůvka in canonical (a, b) order,
// Prim in insertion order — Zahn consumes the set, not the order). Inputs
// with exact distance ties can have several valid MSTs; the
// HFC_SPATIAL_MIN_N floor keeps small hand-laid-out point sets (where
// such ties are deliberate) on the Prim path whose tie behaviour existing
// expectations encode.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "coords/point.h"
#include "distance/distance_service.h"
#include "spatial/spatial_index.h"

namespace hfc {

/// An undirected MST edge between node indices.
struct MstEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  double length = 0.0;
};

/// Distance callback over node indices; must be symmetric and non-negative.
using DistanceFn = std::function<double(std::size_t, std::size_t)>;

/// Prim MST over the complete graph on n nodes. Returns n-1 edges
/// (empty for n <= 1).
[[nodiscard]] std::vector<MstEdge> mst_dense(std::size_t n,
                                             const DistanceFn& distance);

/// MST over all nodes of a distance service. Coordinate-tier services
/// dispatch to the Borůvka path under the HFC_SPATIAL knobs; other tiers
/// run a row-grouped Prim that fetches `row(next)` once per added node —
/// sequential reads the truth tier's row cache retains, instead of the
/// per-pair `at()` canonicalization that thrashes it. Row-tier values are
/// the source's own row view (symmetric tiers are bit-identical to the
/// callback form; see the orientation contract in distance_service.h).
[[nodiscard]] std::vector<MstEdge> mst_dense(const DistanceService& distance);

/// MST of points under Euclidean distance. Dispatches between Prim and
/// the spatial Borůvka path via `spatial_enabled(points.size())`.
[[nodiscard]] std::vector<MstEdge> euclidean_mst(
    const std::vector<Point>& points);

/// Which Borůvka sweep strategy the spatial MST path uses (HFC_MST_ALGO
/// knob). Both produce bit-identical trees; see the header comment.
enum class MstAlgo { kRounds, kPruned };

/// Resolve the HFC_MST_ALGO environment knob (re-read on each call).
/// Invalid values warn once and fall back to kPruned.
[[nodiscard]] MstAlgo mst_algo();

[[nodiscard]] const char* mst_algo_name(MstAlgo algo);

/// The Borůvka-over-spatial-index path, exposed directly so equivalence
/// tests and ablations can pin the structure regardless of environment.
/// Edges come back canonical: a < b, sorted ascending by (a, b). The
/// two-argument form resolves the sweep strategy from HFC_MST_ALGO; the
/// three-argument form pins it for A/B runs.
[[nodiscard]] std::vector<MstEdge> euclidean_mst_spatial(
    const std::vector<Point>& points, SpatialMode mode);

[[nodiscard]] std::vector<MstEdge> euclidean_mst_spatial(
    const std::vector<Point>& points, SpatialMode mode, MstAlgo algo);

/// Group-local construction pipeline selection (DESIGN.md §14). kAuto
/// resolves the HFC_ML_PAR / HFC_ML_PAR_MIN_N knobs; kOn / kOff pin the
/// pipeline for A/B runs and per-build params regardless of environment.
enum class GroupPipelineMode { kAuto, kOn, kOff };

/// The kAuto gate: HFC_ML_PAR != 0 (default on) and n >= HFC_ML_PAR_MIN_N
/// (default 8192 — below that the single global sweep is already cheap).
[[nodiscard]] bool group_pipeline_enabled(std::size_t n);

/// Resolve an explicit mode against the kAuto gate.
[[nodiscard]] bool group_pipeline_selected(GroupPipelineMode mode,
                                           std::size_t n);

/// Partition-cell size cap for the pipeline's local phase
/// (HFC_ML_PAR_GROUP, default 4096).
[[nodiscard]] std::size_t group_pipeline_group_limit();

/// The group-local Borůvka pipeline: median partition with cell bounds,
/// margin-safe per-cell contraction over DynamicSpatialSet-backed local
/// indexes (cells run via parallel_for into disjoint slots), then a
/// lower-bound-pruned global finish sweep. Bit-identical to
/// `euclidean_mst_spatial` for any HFC_THREADS — see the cut-property and
/// floating-point-margin argument in DESIGN.md §14. `group_limit` 0 reads
/// HFC_ML_PAR_GROUP.
[[nodiscard]] std::vector<MstEdge> euclidean_mst_grouped(
    const std::vector<Point>& points, SpatialMode mode,
    std::size_t group_limit = 0);

/// Total length of an edge set.
[[nodiscard]] double total_length(const std::vector<MstEdge>& edges);

}  // namespace hfc
