// Minimum spanning tree over a dense distance function.
//
// The Zahn clustering (paper §3.2) works on the Euclidean MST of the proxy
// coordinates. Three tiers build it (DESIGN.md §11):
//
//   * Prim over a distance callback — O(n^2) evaluations, no structure
//     assumed beyond symmetry. The only option for non-geometric
//     distances, and the fastest below a few hundred points, where a
//     spatial index costs more to build than it saves.
//   * Prim over a DistanceService — the same scan restructured to fetch
//     each added node's whole row once (n row fetches total), so the
//     truth tier's bounded row cache is read sequentially instead of
//     thrashed.
//   * Borůvka over a spatial index (`euclidean_mst_spatial`) — each round
//     tags the index with the current components and asks, per point in
//     parallel, for its nearest foreign point; components shrink
//     geometrically, so the whole build is O(n log n) nearest-neighbour
//     work. This is what `euclidean_mst` and the coordinate-tier
//     `mst_dense` dispatch to once `spatial_enabled(n)` holds (default:
//     n >= 256 with HFC_SPATIAL != off), and it is the tier that carries
//     Zahn clustering to the 100k-proxy scale (bench_topology_scaling).
//
// Equivalence across tiers: all evaluate the same `euclidean()` doubles,
// and with distinct pairwise distances the MST is unique, so Prim and
// Borůvka return the same edge set (Borůvka in canonical (a, b) order,
// Prim in insertion order — Zahn consumes the set, not the order). Inputs
// with exact distance ties can have several valid MSTs; the
// HFC_SPATIAL_MIN_N floor keeps small hand-laid-out point sets (where
// such ties are deliberate) on the Prim path whose tie behaviour existing
// expectations encode.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "coords/point.h"
#include "distance/distance_service.h"
#include "spatial/spatial_index.h"

namespace hfc {

/// An undirected MST edge between node indices.
struct MstEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  double length = 0.0;
};

/// Distance callback over node indices; must be symmetric and non-negative.
using DistanceFn = std::function<double(std::size_t, std::size_t)>;

/// Prim MST over the complete graph on n nodes. Returns n-1 edges
/// (empty for n <= 1).
[[nodiscard]] std::vector<MstEdge> mst_dense(std::size_t n,
                                             const DistanceFn& distance);

/// MST over all nodes of a distance service. Coordinate-tier services
/// dispatch to the Borůvka path under the HFC_SPATIAL knobs; other tiers
/// run a row-grouped Prim that fetches `row(next)` once per added node —
/// sequential reads the truth tier's row cache retains, instead of the
/// per-pair `at()` canonicalization that thrashes it. Row-tier values are
/// the source's own row view (symmetric tiers are bit-identical to the
/// callback form; see the orientation contract in distance_service.h).
[[nodiscard]] std::vector<MstEdge> mst_dense(const DistanceService& distance);

/// MST of points under Euclidean distance. Dispatches between Prim and
/// the spatial Borůvka path via `spatial_enabled(points.size())`.
[[nodiscard]] std::vector<MstEdge> euclidean_mst(
    const std::vector<Point>& points);

/// The Borůvka-over-spatial-index path, exposed directly so equivalence
/// tests and ablations can pin the structure regardless of environment.
/// Edges come back canonical: a < b, sorted ascending by (a, b).
[[nodiscard]] std::vector<MstEdge> euclidean_mst_spatial(
    const std::vector<Point>& points, SpatialMode mode);

/// Total length of an edge set.
[[nodiscard]] double total_length(const std::vector<MstEdge>& edges);

}  // namespace hfc
