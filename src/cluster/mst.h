// Minimum spanning tree over a dense distance function.
//
// The Zahn clustering (paper §3.2) works on the Euclidean MST of the proxy
// coordinates. Prim's algorithm with a linear scan is O(n^2), which is
// optimal for a complete graph and comfortably fast at the paper's scales
// (n <= 1000).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "coords/point.h"
#include "distance/distance_service.h"

namespace hfc {

/// An undirected MST edge between node indices.
struct MstEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  double length = 0.0;
};

/// Distance callback over node indices; must be symmetric and non-negative.
using DistanceFn = std::function<double(std::size_t, std::size_t)>;

/// Prim MST over the complete graph on n nodes. Returns n-1 edges
/// (empty for n <= 1).
[[nodiscard]] std::vector<MstEdge> mst_dense(std::size_t n,
                                             const DistanceFn& distance);

/// MST over all nodes of a distance service (same Prim scan, so the edge
/// set is bit-identical to the callback form over equal distances). The
/// intended input is the coordinate tier — O(k) per query; the truth tier
/// works but thrashes a small row cache, since Prim's scan order touches
/// rows in non-sequential order.
[[nodiscard]] std::vector<MstEdge> mst_dense(const DistanceService& distance);

/// Convenience: MST of points under Euclidean distance.
[[nodiscard]] std::vector<MstEdge> euclidean_mst(
    const std::vector<Point>& points);

/// Total length of an edge set.
[[nodiscard]] double total_length(const std::vector<MstEdge>& edges);

}  // namespace hfc
