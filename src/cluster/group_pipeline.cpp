// Group-local construction pipeline (DESIGN.md §14).
//
// Three phases, all producing the exact same tree as the global sweep:
//
//   partition — recursive widest-axis median split of the point ids into
//     cells of at most HFC_ML_PAR_GROUP points, recording each cell's
//     axis-aligned bounding box from the split planes it passed through.
//   local — every cell runs its own Borůvka contraction over a
//     DynamicSpatialSet of only its members (brute scan below 32 points,
//     subset index above). A component may contract its intra-cell
//     candidate only when the candidate is *margin-safe*: strictly
//     shorter than the cell-boundary distance floor of every member, so
//     no point outside the cell could offer a shorter (or tying)
//     outgoing edge. Cells run via parallel_for into disjoint slots —
//     disjoint UnionFind ranges, labels, margins, edge lists — so the
//     phase is deterministic for any thread count.
//   finish — the residual forest merges under the ordinary global
//     pruned sweep, seeded with per-point lower bounds on the distance
//     to the nearest foreign point (min of the last local answer and the
//     cell margin). The bound is monotone — components only grow, so the
//     foreign set only shrinks — and lets interior points skip their
//     k-d descent entirely once a component holds a closer candidate.
//
// Exactness of the margin test rests on the floating-point shape of
// `euclidean()`: the margin evaluates the same rounded expression
// fl(sqrt(fl(fl(v-b)·fl(v-b)))) against the nearest cell face, and IEEE
// rounding is monotone, so every computed cross-cell distance is >= the
// computed margin. The strict `<` then guarantees the local candidate
// beats every cross-cell edge under the (d, a, b) order — see DESIGN.md
// §14 for the full argument.
#include "cluster/group_pipeline.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace hfc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Disjoint-set over node indices (path-halving). The local phase only
/// ever touches slots of one cell per task — parent pointers stay inside
/// a component, components stay inside their cell — so concurrent cells
/// share one instance without races.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// False when a and b were already connected.
  bool unite(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// True when candidate (d, a, b) improves on the incumbent under the
/// canonical lexicographic edge order.
[[nodiscard]] bool edge_improves(double d, std::size_t a, std::size_t b,
                                 double bd, std::size_t ba, std::size_t bb) {
  if (d != bd) return d < bd;
  if (a != ba) return a < ba;
  return b < bb;
}

/// One partition cell: ids[begin, end) plus the closed axis-aligned box
/// accumulated from the split planes on the path to the cell. Points of
/// other cells lie on or beyond some face of the box.
struct Cell {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::vector<double> lo;
  std::vector<double> hi;
};

/// Recursive widest-axis median split under the (coordinate, id) total
/// order — the multilevel partition rule — tracking cell boxes. Both
/// halves inherit the split value as a face: the left keeps values <=
/// split, the right >= split (ties on the plane go either way, which is
/// why the margin test below must be strict).
void partition_cells(const std::vector<Point>& pts,
                     std::vector<std::size_t>& ids, std::size_t begin,
                     std::size_t end, std::size_t limit,
                     std::vector<double> lo, std::vector<double> hi,
                     std::vector<Cell>& out) {
  if (end - begin <= limit) {
    out.push_back(Cell{begin, end, std::move(lo), std::move(hi)});
    return;
  }
  const std::size_t dim = pts[ids[begin]].size();
  std::size_t axis = 0;
  double widest = -1.0;
  for (std::size_t d = 0; d < dim; ++d) {
    double min_v = pts[ids[begin]][d];
    double max_v = min_v;
    for (std::size_t p = begin + 1; p < end; ++p) {
      min_v = std::min(min_v, pts[ids[p]][d]);
      max_v = std::max(max_v, pts[ids[p]][d]);
    }
    if (max_v - min_v > widest) {
      widest = max_v - min_v;
      axis = d;
    }
  }
  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(ids.begin() + static_cast<std::ptrdiff_t>(begin),
                   ids.begin() + static_cast<std::ptrdiff_t>(mid),
                   ids.begin() + static_cast<std::ptrdiff_t>(end),
                   [&pts, axis](std::size_t a, std::size_t b) {
                     const double va = pts[a][axis];
                     const double vb = pts[b][axis];
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  const double split = pts[ids[mid]][axis];
  std::vector<double> left_hi = hi;
  left_hi[axis] = std::min(left_hi[axis], split);
  std::vector<double> right_lo = lo;
  right_lo[axis] = std::max(right_lo[axis], split);
  partition_cells(pts, ids, begin, mid, limit, std::move(lo),
                  std::move(left_hi), out);
  partition_cells(pts, ids, mid, end, limit, std::move(right_lo),
                  std::move(hi), out);
}

/// Floor on the computed euclidean distance from `v` to any point on or
/// beyond a face of the cell box. Mirrors euclidean()'s expression shape
/// — one rounded subtraction, one rounded square, one rounded sqrt — so
/// monotone IEEE rounding gives euclidean(v, p) >= margin_for(v) for
/// every cross-cell p. Infinite when the cell is unbounded on all axes
/// (single-cell inputs).
[[nodiscard]] double margin_for(const Point& v, const std::vector<double>& lo,
                                const std::vector<double>& hi) {
  double best_sq = kInf;
  for (std::size_t d = 0; d < v.size(); ++d) {
    if (lo[d] != -kInf) {
      const double diff = v[d] - lo[d];
      best_sq = std::min(best_sq, diff * diff);
    }
    if (hi[d] != kInf) {
      const double diff = v[d] - hi[d];
      best_sq = std::min(best_sq, diff * diff);
    }
  }
  if (best_sq == kInf) return kInf;
  return std::sqrt(best_sq);
}

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t elapsed_us(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            since)
          .count());
}

}  // namespace

bool group_pipeline_enabled(std::size_t n) {
  if (env_size_t("HFC_ML_PAR", 1, 0) == 0) return false;
  return n >= env_size_t("HFC_ML_PAR_MIN_N", 8192, 2);
}

bool group_pipeline_selected(GroupPipelineMode mode, std::size_t n) {
  switch (mode) {
    case GroupPipelineMode::kOn:
      return true;
    case GroupPipelineMode::kOff:
      return false;
    case GroupPipelineMode::kAuto:
      break;
  }
  return group_pipeline_enabled(n);
}

std::size_t group_pipeline_group_limit() {
  return env_size_t("HFC_ML_PAR_GROUP", 4096, 2);
}

std::vector<MstEdge> euclidean_mst_grouped(const std::vector<Point>& points,
                                           SpatialMode mode,
                                           std::size_t group_limit) {
  require(mode != SpatialMode::kOff,
          "euclidean_mst_grouped: mode kOff has no index");
  HFC_TRACE_SPAN("cluster.mst");
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("cluster.mst_builds").add(1);
  const std::size_t n = points.size();
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);
  if (group_limit == 0) group_limit = group_pipeline_group_limit();
  const std::size_t dim = points.front().size();

  const Clock::time_point t_partition = Clock::now();
  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  std::vector<Cell> cells;
  partition_cells(points, ids, 0, n, group_limit,
                  std::vector<double>(dim, -kInf),
                  std::vector<double>(dim, kInf), cells);
  registry.counter("construct.partition_us").add(elapsed_us(t_partition));

  const Clock::time_point t_local = Clock::now();
  UnionFind uf(n);
  std::vector<std::int32_t> labels(n, 0);
  std::vector<double> margin(n, kInf);       // per-point cell-boundary floor
  std::vector<double> comp_margin(n, kInf);  // min member margin, by root
  std::vector<double> lb(n, 0.0);            // foreign-distance lower bound
  std::vector<std::vector<MstEdge>> cell_edges(cells.size());
  std::vector<QueryStats> cell_stats(cells.size());
  std::vector<std::uint64_t> cell_skips(cells.size(), 0);

  parallel_for(cells.size(), 1, [&](std::size_t ci) {
    const Cell& cell = cells[ci];
    const std::size_t m = cell.end - cell.begin;
    std::vector<std::int32_t> members(m);
    for (std::size_t i = 0; i < m; ++i) {
      members[i] = static_cast<std::int32_t>(ids[cell.begin + i]);
    }
    std::sort(members.begin(), members.end());
    for (const std::int32_t id : members) {
      const auto v = static_cast<std::size_t>(id);
      margin[v] = margin_for(points[v], cell.lo, cell.hi);
      comp_margin[v] = margin[v];
    }
    if (m <= 1) {
      if (m == 1) lb[static_cast<std::size_t>(members[0])] =
          margin[static_cast<std::size_t>(members[0])];
      return;
    }
    DynamicSpatialSet set;
    set.bulk_load(mode, points, members);
    QueryStats& st = cell_stats[ci];
    std::vector<MstEdge>& out = cell_edges[ci];

    const auto member_pos = [&members](std::int32_t id) {
      return static_cast<std::size_t>(
          std::lower_bound(members.begin(), members.end(), id) -
          members.begin());
    };

    // Per-cell CSR scratch, indexed by member position.
    std::vector<std::int32_t> root_slot(m, -1);
    std::vector<std::size_t> comp_of(m);  // slot of member i this round
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> comp_members(m);
    std::vector<double> cand_d;
    std::vector<std::size_t> cand_a;
    std::vector<std::size_t> cand_b;
    std::vector<double> cand_margin;

    while (out.size() + 1 < m) {
      for (const std::int32_t id : members) {
        labels[static_cast<std::size_t>(id)] =
            static_cast<std::int32_t>(uf.find(static_cast<std::size_t>(id)));
      }
      set.retag(labels);

      // Group members by component, first-seen ascending-member order.
      std::size_t num_comps = 0;
      std::vector<std::size_t> comp_roots;
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t rp =
            member_pos(labels[static_cast<std::size_t>(members[i])]);
        if (root_slot[rp] < 0) {
          root_slot[rp] = static_cast<std::int32_t>(num_comps++);
          comp_roots.push_back(rp);
        }
        comp_of[i] = static_cast<std::size_t>(root_slot[rp]);
      }
      if (num_comps <= 1) {
        for (const std::size_t rp : comp_roots) root_slot[rp] = -1;
        break;
      }
      offsets.assign(num_comps + 1, 0);
      for (std::size_t i = 0; i < m; ++i) ++offsets[comp_of[i] + 1];
      for (std::size_t c = 0; c < num_comps; ++c) offsets[c + 1] += offsets[c];
      {
        std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
        for (std::size_t i = 0; i < m; ++i) {
          comp_members[cursor[comp_of[i]]++] = i;
        }
      }

      // Scan each component with a shrinking inclusive bound, skipping
      // members whose lower bound already rules them out.
      cand_d.assign(num_comps, kInf);
      cand_a.assign(num_comps, 0);
      cand_b.assign(num_comps, 0);
      cand_margin.assign(num_comps, kInf);
      for (std::size_t c = 0; c < num_comps; ++c) {
        const std::int32_t label = labels[static_cast<std::size_t>(
            members[comp_members[offsets[c]]])];
        cand_margin[c] = comp_margin[static_cast<std::size_t>(label)];
        double best_d = kInf;
        std::size_t best_a = 0;
        std::size_t best_b = 0;
        for (std::size_t k = offsets[c]; k < offsets[c + 1]; ++k) {
          const auto v =
              static_cast<std::size_t>(members[comp_members[k]]);
          if (lb[v] > best_d) {
            ++cell_skips[ci];
            continue;
          }
          const SpatialHit hit =
              set.nearest_foreign(points[v], label, best_d, st);
          if (hit.found()) {
            lb[v] = hit.dist;
            const auto u = static_cast<std::size_t>(hit.id);
            const std::size_t a = std::min(v, u);
            const std::size_t b = std::max(v, u);
            if (edge_improves(hit.dist, a, b, best_d, best_a, best_b)) {
              best_d = hit.dist;
              best_a = a;
              best_b = b;
            }
          } else {
            lb[v] = std::max(lb[v], best_d);
          }
        }
        cand_d[c] = best_d;
        cand_a[c] = best_a;
        cand_b[c] = best_b;
      }
      for (const std::size_t rp : comp_roots) root_slot[rp] = -1;

      // Margin-safe contraction: apply only candidates strictly inside
      // the component's cell-boundary floor — those are globally minimal
      // outgoing edges of their component, so the cut property puts them
      // in the unique (d, a, b)-lexicographic MST.
      bool progress = false;
      for (std::size_t c = 0; c < num_comps; ++c) {
        if (!(cand_d[c] < cand_margin[c])) continue;
        const std::size_t ra = uf.find(cand_a[c]);
        const std::size_t rb = uf.find(cand_b[c]);
        if (ra == rb) continue;  // mutual selection, already merged
        const double merged = std::min(comp_margin[ra], comp_margin[rb]);
        uf.unite(ra, rb);
        comp_margin[uf.find(ra)] = merged;
        out.push_back(MstEdge{cand_a[c], cand_b[c], cand_d[c]});
        progress = true;
      }
      if (!progress) break;
    }

    // Seed the finish phase: the nearest foreign point is either the
    // last intra-cell answer (still a valid floor — the component only
    // grew since) or beyond the cell boundary. A fully contracted cell
    // has no intra-cell foreigners left at all.
    const bool fully_contracted = out.size() + 1 == m;
    for (const std::int32_t id : members) {
      const auto v = static_cast<std::size_t>(id);
      lb[v] = fully_contracted ? margin[v] : std::min(lb[v], margin[v]);
    }
  });
  registry.counter("construct.local_mst_us").add(elapsed_us(t_local));

  const Clock::time_point t_finish = Clock::now();
  QueryStats total;
  std::uint64_t lb_skips = 0;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    edges.insert(edges.end(), cell_edges[ci].begin(), cell_edges[ci].end());
    total += cell_stats[ci];
    lb_skips += cell_skips[ci];
  }

  if (edges.size() + 1 < n) {
    // Finish: the ordinary pruned global sweep (cluster/mst.cpp) over
    // the seeded forest, with the lower-bound skip layered on. A member
    // whose bound exceeds the component's incumbent cannot improve it —
    // its query would miss at that bound — so skipping is exact, and
    // ties (lb == best) still query so the (a, b) tie-break is
    // preserved.
    const std::unique_ptr<SpatialIndex> index =
        make_spatial_index(mode, points);
    std::vector<double> cand_d(n, kInf);
    std::vector<std::size_t> cand_a(n, 0);
    std::vector<std::size_t> cand_b(n, 0);
    std::vector<std::int32_t> root_slot(n, -1);
    std::vector<std::size_t> comp_roots;
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> members(n);
    std::vector<QueryStats> comp_stats;
    std::vector<std::uint64_t> comp_skips;

    while (edges.size() + 1 < n) {
      for (std::size_t v = 0; v < n; ++v) {
        labels[v] = static_cast<std::int32_t>(uf.find(v));
      }
      index->retag(labels);

      std::size_t num_comps = 0;
      comp_roots.clear();
      for (std::size_t v = 0; v < n; ++v) {
        const auto root = static_cast<std::size_t>(labels[v]);
        if (root_slot[root] < 0) {
          root_slot[root] = static_cast<std::int32_t>(num_comps++);
          comp_roots.push_back(root);
        }
      }
      offsets.assign(num_comps + 1, 0);
      for (std::size_t v = 0; v < n; ++v) {
        ++offsets[static_cast<std::size_t>(
                      root_slot[static_cast<std::size_t>(labels[v])]) +
                  1];
      }
      for (std::size_t c = 0; c < num_comps; ++c) offsets[c + 1] += offsets[c];
      {
        std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
        for (std::size_t v = 0; v < n; ++v) {
          members[cursor[static_cast<std::size_t>(
              root_slot[static_cast<std::size_t>(labels[v])])]++] = v;
        }
      }
      comp_stats.assign(num_comps, QueryStats{});
      comp_skips.assign(num_comps, 0);
      parallel_for(num_comps, 16, [&](std::size_t c) {
        const std::size_t root = comp_roots[c];
        const auto label = static_cast<std::int32_t>(root);
        double best_d = kInf;
        std::size_t best_a = 0;
        std::size_t best_b = 0;
        QueryStats& st = comp_stats[c];
        for (std::size_t k = offsets[c]; k < offsets[c + 1]; ++k) {
          const std::size_t v = members[k];
          if (lb[v] > best_d) {
            ++comp_skips[c];
            continue;
          }
          const SpatialHit hit =
              index->nearest_foreign(points[v], label, best_d, st);
          if (hit.found()) {
            lb[v] = hit.dist;
            const auto u = static_cast<std::size_t>(hit.id);
            const std::size_t a = std::min(v, u);
            const std::size_t b = std::max(v, u);
            if (edge_improves(hit.dist, a, b, best_d, best_a, best_b)) {
              best_d = hit.dist;
              best_a = a;
              best_b = b;
            }
          } else {
            lb[v] = std::max(lb[v], best_d);
          }
        }
        cand_d[root] = best_d;
        cand_a[root] = best_a;
        cand_b[root] = best_b;
      });
      for (std::size_t c = 0; c < num_comps; ++c) {
        ensure(cand_d[comp_roots[c]] != kInf,
               "euclidean_mst_grouped: disconnected point set");
        total += comp_stats[c];
        lb_skips += comp_skips[c];
        root_slot[comp_roots[c]] = -1;
      }

      const std::size_t before = edges.size();
      for (std::size_t root = 0; root < n; ++root) {
        if (cand_d[root] == kInf) continue;
        if (uf.unite(cand_a[root], cand_b[root])) {
          edges.push_back(MstEdge{cand_a[root], cand_b[root], cand_d[root]});
        }
        cand_d[root] = kInf;
      }
      ensure(edges.size() > before, "euclidean_mst_grouped: no progress");
    }
  }
  registry.counter("construct.finish_mst_us").add(elapsed_us(t_finish));
  registry.counter("cluster.mst_candidate_pairs").add(total.point_evals);
  registry.counter("spatial.nodes_visited").add(total.nodes_visited);
  registry.counter("cluster.mst_lb_skips").add(lb_skips);

  std::sort(edges.begin(), edges.end(), [](const MstEdge& x, const MstEdge& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  return edges;
}

std::vector<MstEdge> euclidean_mst_of_set(const DynamicSpatialSet& set,
                                          const std::vector<Point>& coords) {
  const std::vector<std::int32_t>& live = set.live_ids();
  std::vector<MstEdge> edges;
  if (live.size() <= 1) return edges;
  std::vector<Point> sub;
  sub.reserve(live.size());
  for (const std::int32_t id : live) {
    sub.push_back(coords[static_cast<std::size_t>(id)]);
  }
  edges = euclidean_mst(sub);
  // live is ascending, so the order-preserving remap keeps a < b and the
  // canonical (a, b) sort order.
  for (MstEdge& e : edges) {
    e.a = static_cast<std::size_t>(live[e.a]);
    e.b = static_cast<std::size_t>(live[e.b]);
  }
  return edges;
}

Clustering cluster_set(const DynamicSpatialSet& set,
                       const std::vector<Point>& coords,
                       const ZahnParams& params) {
  const std::vector<std::int32_t>& live = set.live_ids();
  Clustering out;
  out.assignment.assign(coords.size(), ClusterId{});
  if (live.empty()) return out;
  std::vector<Point> sub;
  sub.reserve(live.size());
  for (const std::int32_t id : live) {
    sub.push_back(coords[static_cast<std::size_t>(id)]);
  }
  const Clustering local = cluster_points(sub, params);
  out.members.resize(local.cluster_count());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const ClusterId c = local.assignment[i];
    out.assignment[static_cast<std::size_t>(live[i])] = c;
    out.members[c.idx()].push_back(NodeId(live[i]));
  }
  return out;
}

}  // namespace hfc
