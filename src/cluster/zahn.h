// Zahn's MST clustering ("Graph-Theoretical Methods for Detecting and
// Describing Gestalt Clusters", IEEE ToC 1971) — the clustering mechanism
// of paper §3.2.
//
// An MST edge is *inconsistent* when its length is significantly larger
// (factor k) than the average length of nearby edges in the two subtrees
// it joins. Removing all inconsistent edges splits the tree into connected
// components, which are the clusters.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/mst.h"
#include "util/ids.h"

namespace hfc {

/// How the "typical nearby edge length" is computed in the inconsistency
/// test. kMean is Zahn's (and the paper's) formulation; kMedian is robust
/// to multi-scale data, where one enormous nearby edge can mask a
/// moderately long one (needed when clustering hierarchically laid-out
/// points, see src/multilevel/).
enum class ZahnStatistic { kMean, kMedian };

struct ZahnParams {
  /// An edge is inconsistent when length > factor * (typical length of
  /// nearby edges). The paper suggests "a selected number, e.g. 2, 3, ...";
  /// 3 is the default here — 2 over-segments uniform point clouds.
  double inconsistency_factor = 3.0;
  /// How many hops from each endpoint count as "nearby" when averaging.
  std::size_t neighborhood_depth = 2;
  ZahnStatistic statistic = ZahnStatistic::kMean;
  /// Clusters smaller than this are merged into the cluster of their
  /// nearest foreign node (1 disables merging). Not part of the paper's
  /// algorithm; exposed for the ablation study.
  std::size_t min_cluster_size = 1;
};

/// Result of clustering n nodes.
struct Clustering {
  /// assignment[i] = cluster of node i; cluster ids are dense from 0.
  std::vector<ClusterId> assignment;
  /// members[c] = nodes of cluster c, ascending.
  std::vector<std::vector<NodeId>> members;

  [[nodiscard]] std::size_t cluster_count() const { return members.size(); }
  [[nodiscard]] std::size_t node_count() const { return assignment.size(); }
  [[nodiscard]] ClusterId cluster_of(NodeId node) const {
    return assignment.at(node.idx());
  }
};

/// Cluster n nodes from their MST. `distance` is needed only when
/// min_cluster_size > 1 (for merging); pass the same function used to
/// build the MST. Throws on inconsistent inputs. The five-argument form
/// pins the group-local pipeline's parallel inconsistency cut on or off;
/// the four-argument form resolves it from the environment (kAuto).
[[nodiscard]] Clustering zahn_cluster(std::size_t n,
                                      const std::vector<MstEdge>& mst,
                                      const ZahnParams& params,
                                      const DistanceFn& distance);

[[nodiscard]] Clustering zahn_cluster(std::size_t n,
                                      const std::vector<MstEdge>& mst,
                                      const ZahnParams& params,
                                      const DistanceFn& distance,
                                      GroupPipelineMode pipeline);

/// Convenience: MST + clustering of points under Euclidean distance.
/// The three-argument form pins the group-local construction pipeline
/// (MST and inconsistency cut together) for per-build params and A/B
/// tests; the two-argument form resolves it from the environment.
[[nodiscard]] Clustering cluster_points(const std::vector<Point>& points,
                                        const ZahnParams& params = {});

[[nodiscard]] Clustering cluster_points(const std::vector<Point>& points,
                                        const ZahnParams& params,
                                        GroupPipelineMode pipeline);

/// MST + clustering over all nodes of a distance service (the pipeline
/// form: the framework passes its coordinate tier here). Bit-identical
/// to `cluster_points` when the service answers with the same Euclidean
/// distances.
[[nodiscard]] Clustering cluster_nodes(const DistanceService& distance,
                                       const ZahnParams& params = {});

/// Indices (into `mst`) of the edges Zahn's test marks inconsistent.
/// Each edge's verdict is a pure function of the MST adjacency, so the
/// group-pipeline variant evaluates fixed-size edge blocks in parallel
/// (per-block epoch-stamped BFS scratch, identical traversal and
/// floating-point summation order) and returns a byte-identical list for
/// any HFC_THREADS. The three-argument form resolves the pipeline gate
/// from the environment; the four-argument form pins it.
[[nodiscard]] std::vector<std::size_t> find_inconsistent_edges(
    std::size_t n, const std::vector<MstEdge>& mst, const ZahnParams& params);

[[nodiscard]] std::vector<std::size_t> find_inconsistent_edges(
    std::size_t n, const std::vector<MstEdge>& mst, const ZahnParams& params,
    GroupPipelineMode pipeline);

}  // namespace hfc
