#include "cluster/zahn.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace hfc {

namespace {

struct Adjacency {
  struct Arc {
    std::size_t edge;  ///< index into the MST edge list
    std::size_t to;
  };
  std::vector<std::vector<Arc>> arcs;
};

Adjacency build_adjacency(std::size_t n, const std::vector<MstEdge>& mst) {
  Adjacency adj;
  adj.arcs.resize(n);
  for (std::size_t e = 0; e < mst.size(); ++e) {
    require(mst[e].a < n && mst[e].b < n, "zahn: edge endpoint out of range");
    adj.arcs[mst[e].a].push_back({e, mst[e].b});
    adj.arcs[mst[e].b].push_back({e, mst[e].a});
  }
  return adj;
}

/// Lengths of edges reachable from `start` within `depth` hops without
/// crossing `banned_edge`.
void collect_nearby(const Adjacency& adj, const std::vector<MstEdge>& mst,
                    std::size_t start, std::size_t banned_edge,
                    std::size_t depth, std::vector<double>& lengths) {
  std::queue<std::pair<std::size_t, std::size_t>> frontier;  // (node, depth)
  std::vector<bool> visited(adj.arcs.size(), false);
  frontier.emplace(start, 0);
  visited[start] = true;
  while (!frontier.empty()) {
    const auto [u, d] = frontier.front();
    frontier.pop();
    if (d >= depth) continue;
    for (const Adjacency::Arc& arc : adj.arcs[u]) {
      if (arc.edge == banned_edge || visited[arc.to]) continue;
      visited[arc.to] = true;
      lengths.push_back(mst[arc.edge].length);
      frontier.emplace(arc.to, d + 1);
    }
  }
}

double typical_length(std::vector<double>& lengths, ZahnStatistic statistic) {
  if (statistic == ZahnStatistic::kMedian) {
    const std::size_t mid = lengths.size() / 2;
    std::nth_element(lengths.begin(), lengths.begin() + mid, lengths.end());
    return lengths[mid];
  }
  double sum = 0.0;
  for (double l : lengths) sum += l;
  return sum / static_cast<double>(lengths.size());
}

/// Disjoint-set over node indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

Clustering components_to_clustering(std::size_t n, UnionFind& uf) {
  Clustering out;
  out.assignment.assign(n, ClusterId{});
  std::vector<std::int32_t> root_to_cluster(n, -1);
  std::int32_t next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t root = uf.find(v);
    if (root_to_cluster[root] < 0) root_to_cluster[root] = next++;
    out.assignment[v] = ClusterId(root_to_cluster[root]);
  }
  out.members.resize(static_cast<std::size_t>(next));
  for (std::size_t v = 0; v < n; ++v) {
    out.members[out.assignment[v].idx()].push_back(
        NodeId(static_cast<std::int32_t>(v)));
  }
  return out;
}

/// Merge every cluster smaller than `min_size` into the cluster of its
/// nearest foreign node, smallest clusters first.
Clustering merge_small_clusters(Clustering clustering, std::size_t min_size,
                                const DistanceFn& distance) {
  require(static_cast<bool>(distance),
          "zahn: min_cluster_size > 1 requires a distance function");
  const std::size_t n = clustering.node_count();
  while (clustering.cluster_count() > 1) {
    // Find the smallest under-sized cluster.
    std::size_t victim = clustering.cluster_count();
    std::size_t victim_size = min_size;
    for (std::size_t c = 0; c < clustering.cluster_count(); ++c) {
      if (clustering.members[c].size() < victim_size) {
        victim = c;
        victim_size = clustering.members[c].size();
      }
    }
    if (victim == clustering.cluster_count()) break;  // all big enough

    // Nearest foreign node to any member of the victim cluster.
    double best = std::numeric_limits<double>::infinity();
    ClusterId target;
    for (NodeId member : clustering.members[victim]) {
      for (std::size_t v = 0; v < n; ++v) {
        const ClusterId cv = clustering.assignment[v];
        if (cv.idx() == victim) continue;
        const double d = distance(member.idx(), v);
        if (d < best) {
          best = d;
          target = cv;
        }
      }
    }
    ensure(target.valid(), "zahn: no merge target found");

    // Re-label and re-densify.
    UnionFind uf(n);
    for (std::size_t c = 0; c < clustering.cluster_count(); ++c) {
      const std::size_t rep = clustering.members[c].front().idx();
      for (NodeId m : clustering.members[c]) uf.unite(m.idx(), rep);
    }
    uf.unite(clustering.members[victim].front().idx(),
             clustering.members[target.idx()].front().idx());
    clustering = components_to_clustering(n, uf);
  }
  return clustering;
}

/// Block-parallel variant of the sweep below. Every edge's verdict is a
/// pure function of the MST adjacency, so edges evaluate independently;
/// fixed-size blocks (independent of thread count) carry their own
/// epoch-stamped visited array and FIFO, and reproduce collect_nearby's
/// BFS arc order — and with it the kMean summation order — exactly. The
/// per-edge flags are collected serially ascending, so the result is
/// byte-identical to the serial sweep for any HFC_THREADS.
std::vector<std::size_t> find_inconsistent_edges_parallel(
    std::size_t n, const std::vector<MstEdge>& mst, const ZahnParams& params) {
  // CSR adjacency with arcs in the same per-node order as
  // build_adjacency's push_backs (a stable counting sort over edges).
  const std::size_t m = mst.size();
  std::vector<std::size_t> offsets(n + 1, 0);
  for (const MstEdge& e : mst) {
    require(e.a < n && e.b < n, "zahn: edge endpoint out of range");
    ++offsets[e.a + 1];
    ++offsets[e.b + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<Adjacency::Arc> arcs(2 * m);
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t e = 0; e < m; ++e) {
      arcs[cursor[mst[e].a]++] = {e, mst[e].b};
      arcs[cursor[mst[e].b]++] = {e, mst[e].a};
    }
  }

  std::vector<std::uint8_t> flagged(m, 0);
  constexpr std::size_t kBlock = 2048;
  const std::size_t blocks = (m + kBlock - 1) / kBlock;
  parallel_for(blocks, 1, [&](std::size_t blk) {
    std::vector<std::uint32_t> stamp(n, 0);
    std::uint32_t epoch = 0;
    std::vector<std::pair<std::size_t, std::size_t>> fifo;  // (node, depth)
    std::vector<double> lengths;
    const std::size_t lo = blk * kBlock;
    const std::size_t hi = std::min(m, lo + kBlock);
    for (std::size_t e = lo; e < hi; ++e) {
      lengths.clear();
      for (const std::size_t start : {mst[e].a, mst[e].b}) {
        ++epoch;  // fresh visited set per endpoint, like collect_nearby
        fifo.clear();
        fifo.emplace_back(start, 0);
        stamp[start] = epoch;
        for (std::size_t head = 0; head < fifo.size(); ++head) {
          const auto [u, d] = fifo[head];
          if (d >= params.neighborhood_depth) continue;
          for (std::size_t k = offsets[u]; k < offsets[u + 1]; ++k) {
            const Adjacency::Arc& arc = arcs[k];
            if (arc.edge == e || stamp[arc.to] == epoch) continue;
            stamp[arc.to] = epoch;
            lengths.push_back(mst[arc.edge].length);
            fifo.emplace_back(arc.to, d + 1);
          }
        }
      }
      if (lengths.empty()) continue;
      const double typical = typical_length(lengths, params.statistic);
      if (typical <= 0.0) continue;
      if (mst[e].length / typical > params.inconsistency_factor) {
        flagged[e] = 1;
      }
    }
  });

  std::vector<std::size_t> inconsistent;
  for (std::size_t e = 0; e < m; ++e) {
    if (flagged[e] != 0) inconsistent.push_back(e);
  }
  return inconsistent;
}

}  // namespace

std::vector<std::size_t> find_inconsistent_edges(
    std::size_t n, const std::vector<MstEdge>& mst, const ZahnParams& params) {
  return find_inconsistent_edges(n, mst, params, GroupPipelineMode::kAuto);
}

std::vector<std::size_t> find_inconsistent_edges(
    std::size_t n, const std::vector<MstEdge>& mst, const ZahnParams& params,
    GroupPipelineMode pipeline) {
  require(params.inconsistency_factor > 0.0,
          "zahn: inconsistency factor must be positive");
  require(params.neighborhood_depth >= 1, "zahn: neighborhood depth >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::size_t> inconsistent;
  if (group_pipeline_selected(pipeline, n)) {
    inconsistent = find_inconsistent_edges_parallel(n, mst, params);
  } else {
    const Adjacency adj = build_adjacency(n, mst);
    std::vector<double> lengths;
    for (std::size_t e = 0; e < mst.size(); ++e) {
      lengths.clear();
      collect_nearby(adj, mst, mst[e].a, e, params.neighborhood_depth,
                     lengths);
      collect_nearby(adj, mst, mst[e].b, e, params.neighborhood_depth,
                     lengths);
      if (lengths.empty()) continue;  // nothing to compare against: keep
      const double typical = typical_length(lengths, params.statistic);
      if (typical <= 0.0) continue;  // degenerate (co-located neighbourhood)
      if (mst[e].length / typical > params.inconsistency_factor) {
        inconsistent.push_back(e);
      }
    }
  }
  obs::MetricsRegistry::global()
      .counter("construct.zahn_cut_us")
      .add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
  return inconsistent;
}

Clustering zahn_cluster(std::size_t n, const std::vector<MstEdge>& mst,
                        const ZahnParams& params, const DistanceFn& distance) {
  return zahn_cluster(n, mst, params, distance, GroupPipelineMode::kAuto);
}

Clustering zahn_cluster(std::size_t n, const std::vector<MstEdge>& mst,
                        const ZahnParams& params, const DistanceFn& distance,
                        GroupPipelineMode pipeline) {
  HFC_TRACE_SPAN("cluster.zahn");
  require(mst.size() + 1 == n || (n <= 1 && mst.empty()),
          "zahn: edge list is not a spanning tree of n nodes");
  const std::vector<std::size_t> inconsistent =
      find_inconsistent_edges(n, mst, params, pipeline);

  std::vector<bool> removed(mst.size(), false);
  for (std::size_t e : inconsistent) removed[e] = true;

  UnionFind uf(n);
  for (std::size_t e = 0; e < mst.size(); ++e) {
    if (!removed[e]) uf.unite(mst[e].a, mst[e].b);
  }
  Clustering clustering = components_to_clustering(n, uf);
  const std::size_t before_merge = clustering.cluster_count();
  if (params.min_cluster_size > 1) {
    clustering = merge_small_clusters(std::move(clustering),
                                      params.min_cluster_size, distance);
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("cluster.inconsistent_edges").add(inconsistent.size());
  registry.counter("cluster.small_cluster_merges")
      .add(before_merge - clustering.cluster_count());
  registry.gauge("cluster.clusters")
      .set(static_cast<double>(clustering.cluster_count()));
  return clustering;
}

Clustering cluster_points(const std::vector<Point>& points,
                          const ZahnParams& params) {
  return cluster_points(points, params, GroupPipelineMode::kAuto);
}

Clustering cluster_points(const std::vector<Point>& points,
                          const ZahnParams& params,
                          GroupPipelineMode pipeline) {
  const DistanceFn distance = [&points](std::size_t i, std::size_t j) {
    return euclidean(points[i], points[j]);
  };
  const std::size_t n = points.size();
  std::vector<MstEdge> mst;
  if (!spatial_enabled(n)) {
    mst = euclidean_mst(points);  // Prim tier; no pipeline below the floor
  } else if (group_pipeline_selected(pipeline, n)) {
    mst = euclidean_mst_grouped(points, spatial_mode());
  } else {
    mst = euclidean_mst_spatial(points, spatial_mode());
  }
  return zahn_cluster(n, mst, params, distance, pipeline);
}

Clustering cluster_nodes(const DistanceService& distance,
                         const ZahnParams& params) {
  const DistanceFn fn = [&distance](std::size_t i, std::size_t j) {
    return distance.at(i, j);
  };
  return zahn_cluster(distance.size(), mst_dense(distance), params, fn);
}

}  // namespace hfc
