#include "spatial/spatial_index.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

#include "spatial/kd_tree.h"
#include "spatial/uniform_grid.h"
#include "util/env.h"
#include "util/require.h"

namespace hfc {

namespace {

/// Warn once per distinct bad HFC_SPATIAL value, mirroring the env_size_t
/// knob behaviour for the one string-valued knob in the tree.
void warn_bad_mode(const char* raw) {
  static std::mutex mu;
  static bool warned = false;
  std::lock_guard<std::mutex> lk(mu);
  if (warned) return;
  warned = true;
  std::cerr << "[hfc] warning: ignoring HFC_SPATIAL=\"" << raw
            << "\" (expected off|kdtree|grid); using default kdtree\n";
}

}  // namespace

SpatialMode spatial_mode() {
  const char* raw = std::getenv("HFC_SPATIAL");
  if (raw == nullptr || std::strcmp(raw, "kdtree") == 0) {
    return SpatialMode::kKdTree;
  }
  if (std::strcmp(raw, "off") == 0) return SpatialMode::kOff;
  if (std::strcmp(raw, "grid") == 0) return SpatialMode::kGrid;
  warn_bad_mode(raw);
  return SpatialMode::kKdTree;
}

std::size_t spatial_min_n() {
  return env_size_t("HFC_SPATIAL_MIN_N", 256, 2);
}

bool spatial_enabled(std::size_t n) {
  return spatial_mode() != SpatialMode::kOff && n >= spatial_min_n();
}

const char* spatial_mode_name(SpatialMode mode) {
  switch (mode) {
    case SpatialMode::kOff:
      return "off";
    case SpatialMode::kKdTree:
      return "kdtree";
    case SpatialMode::kGrid:
      return "grid";
  }
  return "?";
}

std::unique_ptr<SpatialIndex> make_spatial_index(
    SpatialMode mode, const std::vector<Point>& coords,
    std::vector<std::int32_t> ids) {
  require(mode != SpatialMode::kOff,
          "make_spatial_index: mode kOff has no index");
  if (mode == SpatialMode::kGrid) {
    return std::make_unique<UniformGrid>(coords, std::move(ids));
  }
  return std::make_unique<KdTree>(coords, std::move(ids));
}

}  // namespace hfc
