#include "spatial/kd_tree.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace hfc {

namespace {

/// Lexicographic (distance, id) — the order every tie resolves under.
[[nodiscard]] inline bool hit_less(const SpatialHit& a, const SpatialHit& b) {
  if (a.dist != b.dist) return a.dist < b.dist;
  return a.id < b.id;
}

}  // namespace

KdTree::KdTree(const std::vector<Point>& coords,
               std::vector<std::int32_t> ids)
    : coords_(&coords), ids_(std::move(ids)) {
  require(!coords.empty(), "KdTree: empty coordinate set");
  dim_ = coords.front().size();
  require(dim_ >= 1, "KdTree: zero-dimensional points");
  if (ids_.empty()) {
    ids_.reserve(coords.size());
    for (std::size_t i = 0; i < coords.size(); ++i) {
      ids_.push_back(static_cast<std::int32_t>(i));
    }
  }
  for (const std::int32_t id : ids_) {
    require(id >= 0 && static_cast<std::size_t>(id) < coords.size() &&
                coords[static_cast<std::size_t>(id)].size() == dim_,
            "KdTree: bad point id or dimension");
  }
  require(!ids_.empty(), "KdTree: empty id subset");
  nodes_.reserve(2 * ids_.size() / kLeafSize + 2);
  root_ = build(0, static_cast<std::uint32_t>(ids_.size()));
}

std::int32_t KdTree::build(std::uint32_t begin, std::uint32_t end) {
  const std::int32_t me = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{begin, end, -1, -1, -1, 0.0});
  boxes_.resize(boxes_.size() + 2 * dim_);
  // Exact bounding box of the subtree's points.
  const std::size_t box = static_cast<std::size_t>(me) * 2 * dim_;
  for (std::size_t d = 0; d < dim_; ++d) {
    boxes_[box + d] = point(begin)[d];
    boxes_[box + dim_ + d] = point(begin)[d];
  }
  for (std::uint32_t p = begin + 1; p < end; ++p) {
    for (std::size_t d = 0; d < dim_; ++d) {
      boxes_[box + d] = std::min(boxes_[box + d], point(p)[d]);
      boxes_[box + dim_ + d] = std::max(boxes_[box + dim_ + d], point(p)[d]);
    }
  }
  if (end - begin <= kLeafSize) return me;

  // Split on the widest axis at the (coordinate, id)-median; the id
  // tie-break makes nth_element's two sides deterministic sets and
  // guarantees progress even when every coordinate is identical.
  std::size_t axis = 0;
  double widest = boxes_[box + dim_] - boxes_[box];
  for (std::size_t d = 1; d < dim_; ++d) {
    const double extent = boxes_[box + dim_ + d] - boxes_[box + d];
    if (extent > widest) {
      widest = extent;
      axis = d;
    }
  }
  const std::uint32_t mid = begin + (end - begin) / 2;
  const auto cmp = [this, axis](std::int32_t a, std::int32_t b) {
    const double va = (*coords_)[static_cast<std::size_t>(a)][axis];
    const double vb = (*coords_)[static_cast<std::size_t>(b)][axis];
    if (va != vb) return va < vb;
    return a < b;
  };
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, cmp);
  nodes_[static_cast<std::size_t>(me)].axis = static_cast<std::int32_t>(axis);
  nodes_[static_cast<std::size_t>(me)].split =
      (*coords_)[static_cast<std::size_t>(ids_[mid])][axis];
  const std::int32_t left = build(begin, mid);
  const std::int32_t right = build(mid, end);
  nodes_[static_cast<std::size_t>(me)].left = left;
  nodes_[static_cast<std::size_t>(me)].right = right;
  return me;
}

double KdTree::box_distance(std::int32_t node, const Point& q) const {
  // Structurally identical accumulation to euclidean(): per-axis excess
  // in axis order, squared, summed, rooted — so the computed bound never
  // exceeds the computed distance of any point inside the box.
  const std::size_t box = static_cast<std::size_t>(node) * 2 * dim_;
  double sum = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    double excess = 0.0;
    if (q[d] < boxes_[box + d]) {
      excess = boxes_[box + d] - q[d];
    } else if (q[d] > boxes_[box + dim_ + d]) {
      excess = q[d] - boxes_[box + dim_ + d];
    }
    sum += excess * excess;
  }
  return std::sqrt(sum);
}

void KdTree::search(std::int32_t node, const Point& q,
                    std::int32_t foreign_label, SpatialFilter accept,
                    const void* ctx, SpatialHit& best,
                    QueryStats& stats) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (foreign_label != kAnyLabel &&
      node_tag_[static_cast<std::size_t>(node)] == foreign_label) {
    return;  // whole subtree inside the query's own component
  }
  ++stats.nodes_visited;
  if (box_distance(node, q) > best.dist) return;
  if (n.axis < 0) {
    for (std::uint32_t p = n.begin; p < n.end; ++p) {
      const std::int32_t id = ids_[p];
      if (foreign_label != kAnyLabel && point_tag_[p] == foreign_label) {
        continue;
      }
      if (accept != nullptr && !accept(id, ctx)) continue;
      ++stats.point_evals;
      const double d = euclidean(q, point(p));
      if (d < best.dist || (d == best.dist && id < best.id)) {
        best.dist = d;
        best.id = id;
      }
    }
    return;
  }
  // Nearer half first (by split plane); the box test above re-checks the
  // far half against the possibly improved bound.
  const bool left_first = q[static_cast<std::size_t>(n.axis)] <= n.split;
  search(left_first ? n.left : n.right, q, foreign_label, accept, ctx, best,
         stats);
  search(left_first ? n.right : n.left, q, foreign_label, accept, ctx, best,
         stats);
}

SpatialHit KdTree::nearest(const Point& q, double bound, QueryStats& stats,
                           SpatialFilter accept, const void* ctx) const {
  require(q.size() == dim_, "KdTree::nearest: dimension mismatch");
  SpatialHit best;
  best.dist = bound;
  best.id = std::numeric_limits<std::int32_t>::max();  // any real id wins ties
  search(root_, q, kAnyLabel, accept, ctx, best, stats);
  if (best.id == std::numeric_limits<std::int32_t>::max()) return SpatialHit{};
  return best;
}

SpatialHit KdTree::nearest_foreign(const Point& q, std::int32_t label,
                                   double bound, QueryStats& stats) const {
  require(q.size() == dim_, "KdTree::nearest_foreign: dimension mismatch");
  require(node_tag_.size() == nodes_.size(),
          "KdTree::nearest_foreign: retag() has not been called");
  SpatialHit best;
  best.dist = bound;
  best.id = std::numeric_limits<std::int32_t>::max();
  search(root_, q, label, nullptr, nullptr, best, stats);
  if (best.id == std::numeric_limits<std::int32_t>::max()) return SpatialHit{};
  return best;
}

std::vector<SpatialHit> KdTree::k_nearest(const Point& q, std::size_t k,
                                          QueryStats& stats,
                                          SpatialFilter accept,
                                          const void* ctx) const {
  require(q.size() == dim_, "KdTree::k_nearest: dimension mismatch");
  if (k == 0) return {};
  // Max-heap of the best k (distance, id) pairs; the heap front is the
  // current k-th best, the pruning bound once the heap is full.
  std::vector<SpatialHit> heap;
  heap.reserve(k);
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t node = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    ++stats.nodes_visited;
    if (heap.size() == k && box_distance(node, q) > heap.front().dist) {
      continue;
    }
    if (n.axis < 0) {
      for (std::uint32_t p = n.begin; p < n.end; ++p) {
        const std::int32_t id = ids_[p];
        if (accept != nullptr && !accept(id, ctx)) continue;
        ++stats.point_evals;
        const SpatialHit cand{id, euclidean(q, point(p))};
        if (heap.size() < k) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end(), hit_less);
        } else if (hit_less(cand, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), hit_less);
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end(), hit_less);
        }
      }
      continue;
    }
    // Nearer half on top of the stack so it is explored first.
    const bool left_first = q[static_cast<std::size_t>(n.axis)] <= n.split;
    stack.push_back(left_first ? n.right : n.left);
    stack.push_back(left_first ? n.left : n.right);
  }
  std::sort(heap.begin(), heap.end(), hit_less);
  return heap;
}

std::vector<std::int32_t> KdTree::range(const Point& q, double radius,
                                        QueryStats& stats) const {
  require(q.size() == dim_, "KdTree::range: dimension mismatch");
  std::vector<std::int32_t> out;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t node = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    ++stats.nodes_visited;
    if (box_distance(node, q) > radius) continue;
    if (n.axis < 0) {
      for (std::uint32_t p = n.begin; p < n.end; ++p) {
        ++stats.point_evals;
        if (euclidean(q, point(p)) <= radius) out.push_back(ids_[p]);
      }
      continue;
    }
    stack.push_back(n.left);
    stack.push_back(n.right);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void KdTree::retag(const std::vector<std::int32_t>& labels) {
  point_tag_.resize(ids_.size());
  for (std::size_t p = 0; p < ids_.size(); ++p) {
    require(static_cast<std::size_t>(ids_[p]) < labels.size(),
            "KdTree::retag: labels too short");
    point_tag_[p] = labels[static_cast<std::size_t>(ids_[p])];
  }
  node_tag_.assign(nodes_.size(), kMixedTag);
  (void)retag_node(root_, labels);
}

std::int32_t KdTree::retag_node(std::int32_t node,
                                const std::vector<std::int32_t>& labels) {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  std::int32_t tag;
  if (n.axis < 0) {
    tag = point_tag_[n.begin];
    for (std::uint32_t p = n.begin + 1; p < n.end; ++p) {
      if (point_tag_[p] != tag) {
        tag = kMixedTag;
        break;
      }
    }
  } else {
    const std::int32_t lt = retag_node(n.left, labels);
    const std::int32_t rt = retag_node(n.right, labels);
    tag = (lt == rt) ? lt : kMixedTag;
  }
  node_tag_[static_cast<std::size_t>(node)] = tag;
  return tag;
}

std::size_t KdTree::resident_bytes() const {
  return ids_.capacity() * sizeof(std::int32_t) +
         nodes_.capacity() * sizeof(Node) +
         boxes_.capacity() * sizeof(double) +
         point_tag_.capacity() * sizeof(std::int32_t) +
         node_tag_.capacity() * sizeof(std::int32_t);
}

}  // namespace hfc
