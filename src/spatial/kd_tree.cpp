#include "spatial/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/require.h"

namespace hfc {

namespace {

/// Lexicographic (distance, id) — the order every tie resolves under.
[[nodiscard]] inline bool hit_less(const SpatialHit& a, const SpatialHit& b) {
  if (a.dist != b.dist) return a.dist < b.dist;
  return a.id < b.id;
}

}  // namespace

KdTree::KdTree(const std::vector<Point>& coords,
               std::vector<std::int32_t> ids)
    : coords_(&coords), ids_(std::move(ids)) {
  require(!coords.empty(), "KdTree: empty coordinate set");
  dim_ = coords.front().size();
  require(dim_ >= 1, "KdTree: zero-dimensional points");
  if (ids_.empty()) {
    ids_.reserve(coords.size());
    for (std::size_t i = 0; i < coords.size(); ++i) {
      ids_.push_back(static_cast<std::int32_t>(i));
    }
  }
  for (const std::int32_t id : ids_) {
    require(id >= 0 && static_cast<std::size_t>(id) < coords.size() &&
                coords[static_cast<std::size_t>(id)].size() == dim_,
            "KdTree: bad point id or dimension");
  }
  require(!ids_.empty(), "KdTree: empty id subset");
  nodes_.reserve(2 * ids_.size() / kLeafSize + 2);
  root_ = build_range(ids_, nodes_, boxes_,
                      0, static_cast<std::uint32_t>(ids_.size()));
}

std::int32_t KdTree::build_range(std::vector<std::int32_t>& ids,
                                 std::vector<Node>& nodes,
                                 std::vector<double>& boxes,
                                 std::uint32_t begin,
                                 std::uint32_t end) const {
  const std::int32_t me = static_cast<std::int32_t>(nodes.size());
  nodes.push_back(Node{begin, end, -1, -1, -1, 0.0});
  boxes.resize(boxes.size() + 2 * dim_);
  const auto at = [this, &ids](std::uint32_t pos) -> const Point& {
    return (*coords_)[static_cast<std::size_t>(ids[pos])];
  };
  // Exact bounding box of the subtree's points.
  const std::size_t box = static_cast<std::size_t>(me) * 2 * dim_;
  for (std::size_t d = 0; d < dim_; ++d) {
    boxes[box + d] = at(begin)[d];
    boxes[box + dim_ + d] = at(begin)[d];
  }
  for (std::uint32_t p = begin + 1; p < end; ++p) {
    for (std::size_t d = 0; d < dim_; ++d) {
      boxes[box + d] = std::min(boxes[box + d], at(p)[d]);
      boxes[box + dim_ + d] = std::max(boxes[box + dim_ + d], at(p)[d]);
    }
  }
  if (end - begin <= kLeafSize) return me;

  // Split on the widest axis at the (coordinate, id)-median; the id
  // tie-break makes nth_element's two sides deterministic sets and
  // guarantees progress even when every coordinate is identical.
  std::size_t axis = 0;
  double widest = boxes[box + dim_] - boxes[box];
  for (std::size_t d = 1; d < dim_; ++d) {
    const double extent = boxes[box + dim_ + d] - boxes[box + d];
    if (extent > widest) {
      widest = extent;
      axis = d;
    }
  }
  const std::uint32_t mid = begin + (end - begin) / 2;
  const auto cmp = [this, axis](std::int32_t a, std::int32_t b) {
    const double va = (*coords_)[static_cast<std::size_t>(a)][axis];
    const double vb = (*coords_)[static_cast<std::size_t>(b)][axis];
    if (va != vb) return va < vb;
    return a < b;
  };
  std::nth_element(ids.begin() + begin, ids.begin() + mid,
                   ids.begin() + end, cmp);
  nodes[static_cast<std::size_t>(me)].axis = static_cast<std::int32_t>(axis);
  nodes[static_cast<std::size_t>(me)].split =
      (*coords_)[static_cast<std::size_t>(ids[mid])][axis];
  const std::int32_t left = build_range(ids, nodes, boxes, begin, mid);
  const std::int32_t right = build_range(ids, nodes, boxes, mid, end);
  nodes[static_cast<std::size_t>(me)].left = left;
  nodes[static_cast<std::size_t>(me)].right = right;
  return me;
}

double KdTree::box_distance(std::int32_t node, const Point& q) const {
  // Structurally identical accumulation to euclidean(): per-axis excess
  // in axis order, squared, summed, rooted — so the computed bound never
  // exceeds the computed distance of any point inside the box.
  const std::size_t box = static_cast<std::size_t>(node) * 2 * dim_;
  double sum = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    double excess = 0.0;
    if (q[d] < boxes_[box + d]) {
      excess = boxes_[box + d] - q[d];
    } else if (q[d] > boxes_[box + dim_ + d]) {
      excess = q[d] - boxes_[box + dim_ + d];
    }
    sum += excess * excess;
  }
  return std::sqrt(sum);
}

void KdTree::search(std::int32_t node, const Point& q,
                    std::int32_t foreign_label, SpatialFilter accept,
                    const void* ctx, SpatialHit& best,
                    QueryStats& stats) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (foreign_label != kAnyLabel &&
      node_tag_[static_cast<std::size_t>(node)] == foreign_label) {
    return;  // whole subtree inside the query's own component
  }
  ++stats.nodes_visited;
  if (box_distance(node, q) > best.dist) return;
  if (n.axis < 0) {
    for (std::uint32_t p = n.begin; p < n.end; ++p) {
      const std::int32_t id = ids_[p];
      if (foreign_label != kAnyLabel && point_tag_[p] == foreign_label) {
        continue;
      }
      if (accept != nullptr && !accept(id, ctx)) continue;
      ++stats.point_evals;
      const double d = euclidean(q, point(p));
      if (d < best.dist || (d == best.dist && id < best.id)) {
        best.dist = d;
        best.id = id;
      }
    }
    return;
  }
  // Nearer half first (by split plane); the box test above re-checks the
  // far half against the possibly improved bound.
  const bool left_first = q[static_cast<std::size_t>(n.axis)] <= n.split;
  search(left_first ? n.left : n.right, q, foreign_label, accept, ctx, best,
         stats);
  search(left_first ? n.right : n.left, q, foreign_label, accept, ctx, best,
         stats);
}

SpatialHit KdTree::nearest(const Point& q, double bound, QueryStats& stats,
                           SpatialFilter accept, const void* ctx) const {
  require(q.size() == dim_, "KdTree::nearest: dimension mismatch");
  SpatialHit best;
  best.dist = bound;
  best.id = std::numeric_limits<std::int32_t>::max();  // any real id wins ties
  search(root_, q, kAnyLabel, accept, ctx, best, stats);
  if (best.id == std::numeric_limits<std::int32_t>::max()) return SpatialHit{};
  return best;
}

SpatialHit KdTree::nearest_foreign(const Point& q, std::int32_t label,
                                   double bound, QueryStats& stats) const {
  require(q.size() == dim_, "KdTree::nearest_foreign: dimension mismatch");
  require(node_tag_.size() == nodes_.size(),
          "KdTree::nearest_foreign: retag() has not been called");
  SpatialHit best;
  best.dist = bound;
  best.id = std::numeric_limits<std::int32_t>::max();
  search(root_, q, label, nullptr, nullptr, best, stats);
  if (best.id == std::numeric_limits<std::int32_t>::max()) return SpatialHit{};
  return best;
}

std::vector<SpatialHit> KdTree::k_nearest(const Point& q, std::size_t k,
                                          QueryStats& stats,
                                          SpatialFilter accept,
                                          const void* ctx) const {
  require(q.size() == dim_, "KdTree::k_nearest: dimension mismatch");
  if (k == 0) return {};
  // Max-heap of the best k (distance, id) pairs; the heap front is the
  // current k-th best, the pruning bound once the heap is full.
  std::vector<SpatialHit> heap;
  heap.reserve(k);
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t node = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    ++stats.nodes_visited;
    if (heap.size() == k && box_distance(node, q) > heap.front().dist) {
      continue;
    }
    if (n.axis < 0) {
      for (std::uint32_t p = n.begin; p < n.end; ++p) {
        const std::int32_t id = ids_[p];
        if (accept != nullptr && !accept(id, ctx)) continue;
        ++stats.point_evals;
        const SpatialHit cand{id, euclidean(q, point(p))};
        if (heap.size() < k) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end(), hit_less);
        } else if (hit_less(cand, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), hit_less);
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end(), hit_less);
        }
      }
      continue;
    }
    // Nearer half on top of the stack so it is explored first.
    const bool left_first = q[static_cast<std::size_t>(n.axis)] <= n.split;
    stack.push_back(left_first ? n.right : n.left);
    stack.push_back(left_first ? n.left : n.right);
  }
  std::sort(heap.begin(), heap.end(), hit_less);
  return heap;
}

std::vector<std::int32_t> KdTree::range(const Point& q, double radius,
                                        QueryStats& stats) const {
  require(q.size() == dim_, "KdTree::range: dimension mismatch");
  std::vector<std::int32_t> out;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const std::int32_t node = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    ++stats.nodes_visited;
    if (box_distance(node, q) > radius) continue;
    if (n.axis < 0) {
      for (std::uint32_t p = n.begin; p < n.end; ++p) {
        ++stats.point_evals;
        if (euclidean(q, point(p)) <= radius) out.push_back(ids_[p]);
      }
      continue;
    }
    stack.push_back(n.left);
    stack.push_back(n.right);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void KdTree::retag(const std::vector<std::int32_t>& labels) {
  point_tag_.resize(ids_.size());
  for (std::size_t p = 0; p < ids_.size(); ++p) {
    require(static_cast<std::size_t>(ids_[p]) < labels.size(),
            "KdTree::retag: labels too short");
    point_tag_[p] = labels[static_cast<std::size_t>(ids_[p])];
  }
  node_tag_.assign(nodes_.size(), kMixedTag);
  (void)retag_node(root_, labels);
}

std::int32_t KdTree::retag_node(std::int32_t node,
                                const std::vector<std::int32_t>& labels) {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  std::int32_t tag;
  if (n.axis < 0) {
    tag = point_tag_[n.begin];
    for (std::uint32_t p = n.begin + 1; p < n.end; ++p) {
      if (point_tag_[p] != tag) {
        tag = kMixedTag;
        break;
      }
    }
  } else {
    const std::int32_t lt = retag_node(n.left, labels);
    const std::int32_t rt = retag_node(n.right, labels);
    tag = (lt == rt) ? lt : kMixedTag;
  }
  node_tag_[static_cast<std::size_t>(node)] = tag;
  return tag;
}

bool KdTree::fold_updates(const std::vector<std::int32_t>& adds,
                          const std::vector<std::int32_t>& removes) {
  for (const std::int32_t id : adds) {
    require(id >= 0 && static_cast<std::size_t>(id) < coords_->size() &&
                (*coords_)[static_cast<std::size_t>(id)].size() == dim_,
            "KdTree::fold_updates: bad point id or dimension");
  }
  const std::size_t old_n = ids_.size();
  require(removes.size() <= old_n, "KdTree::fold_updates: too many removes");
  const std::size_t new_n = old_n - removes.size() + adds.size();
  if (new_n == 0) return false;  // caller drops the index instead
  if (adds.empty() && removes.empty()) return true;

  // Locate tombstoned positions in one scan; per-subtree dead counts are
  // prefix differences because subtree id ranges are contiguous.
  std::unordered_set<std::int32_t> dead(removes.begin(), removes.end());
  std::vector<std::uint32_t> dead_prefix(old_n + 1, 0);
  for (std::size_t p = 0; p < old_n; ++p) {
    dead_prefix[p + 1] =
        dead_prefix[p] + (dead.find(ids_[p]) != dead.end() ? 1u : 0u);
  }
  require(dead_prefix[old_n] == removes.size(),
          "KdTree::fold_updates: remove id not indexed (or duplicated)");

  // Route every add down the existing split planes; each increments the
  // counts along its path and lands in exactly one leaf.
  std::vector<std::uint32_t> add_count(nodes_.size(), 0);
  std::vector<std::vector<std::int32_t>> leaf_adds(nodes_.size());
  for (const std::int32_t id : adds) {
    const Point& pt = (*coords_)[static_cast<std::size_t>(id)];
    std::int32_t node = root_;
    while (true) {
      ++add_count[static_cast<std::size_t>(node)];
      const Node& n = nodes_[static_cast<std::size_t>(node)];
      if (n.axis < 0) {
        leaf_adds[static_cast<std::size_t>(node)].push_back(id);
        break;
      }
      node = pt[static_cast<std::size_t>(n.axis)] < n.split ? n.left : n.right;
    }
  }

  FoldScratch s;
  s.dead_prefix = &dead_prefix;
  s.add_count = &add_count;
  s.leaf_adds = &leaf_adds;
  s.ids.reserve(new_n);
  s.nodes.reserve(nodes_.size() + 2 * adds.size() / kLeafSize + 2);
  const std::int32_t new_root = fold_emit(root_, s);

  ids_ = std::move(s.ids);
  nodes_ = std::move(s.nodes);
  boxes_ = std::move(s.boxes);
  root_ = new_root;
  // Component tags are positional; they are meaningless after the fold
  // and must be re-established by retag() before nearest_foreign.
  point_tag_.clear();
  node_tag_.clear();
  obs::MetricsRegistry::global()
      .counter("spatial.fold_points_rebuilt")
      .add(s.points_rebuilt);
  return true;
}

std::int32_t KdTree::fold_emit(std::int32_t old_node, FoldScratch& s) const {
  const Node& n = nodes_[static_cast<std::size_t>(old_node)];
  const std::vector<std::uint32_t>& dead_prefix = *s.dead_prefix;
  const std::vector<std::uint32_t>& add_count = *s.add_count;
  const std::uint32_t size = n.end - n.begin;
  const std::uint32_t dead_cnt = dead_prefix[n.end] - dead_prefix[n.begin];
  const std::uint32_t added = add_count[static_cast<std::size_t>(old_node)];
  const std::uint32_t changes = dead_cnt + added;
  const auto new_begin = static_cast<std::uint32_t>(s.ids.size());

  if (changes == 0) {
    // Untouched subtree: ids, nodes and boxes copy verbatim, shifted to
    // the subtree's new position. No distance work at all.
    for (std::uint32_t p = n.begin; p < n.end; ++p) s.ids.push_back(ids_[p]);
    return fold_copy(old_node,
                     static_cast<std::int64_t>(new_begin) -
                         static_cast<std::int64_t>(n.begin),
                     s);
  }

  const auto child_size = [&](std::int32_t c) {
    const Node& cn = nodes_[static_cast<std::size_t>(c)];
    return (cn.end - cn.begin) - (dead_prefix[cn.end] - dead_prefix[cn.begin]) +
           add_count[static_cast<std::size_t>(c)];
  };
  // Scapegoat rule: a subtree absorbs changes up to a quarter of its
  // size (floor kLeafSize) before it is rebuilt; leaves with any change
  // rebuild outright, as does a node whose child would end up empty
  // (box_distance over an empty node is meaningless).
  const std::uint32_t budget = std::max(kLeafSize, size / 4);
  const bool rebuild = n.axis < 0 || changes > budget ||
                       child_size(n.left) == 0 || child_size(n.right) == 0;
  if (rebuild) {
    // Gather survivors in position order plus the routed adds, then run
    // the normal deterministic median build over the set.
    for (std::uint32_t p = n.begin; p < n.end; ++p) {
      if (dead_prefix[p + 1] == dead_prefix[p]) s.ids.push_back(ids_[p]);
    }
    gather_adds(old_node, s, s.ids);
    const auto new_end = static_cast<std::uint32_t>(s.ids.size());
    s.points_rebuilt += new_end - new_begin;
    return build_range(s.ids, s.nodes, s.boxes, new_begin, new_end);
  }

  // Keep this node: same split plane, children folded recursively, box =
  // the union of the children's boxes. The union *contains* every
  // subtree point, which is all the search correctness argument needs.
  const auto me = static_cast<std::int32_t>(s.nodes.size());
  s.nodes.push_back(Node{new_begin, new_begin + (size - dead_cnt + added), -1,
                         -1, n.axis, n.split});
  s.boxes.resize(s.boxes.size() + 2 * dim_);
  const std::int32_t nl = fold_emit(n.left, s);
  const std::int32_t nr = fold_emit(n.right, s);
  s.nodes[static_cast<std::size_t>(me)].left = nl;
  s.nodes[static_cast<std::size_t>(me)].right = nr;
  const std::size_t box = static_cast<std::size_t>(me) * 2 * dim_;
  const std::size_t lbox = static_cast<std::size_t>(nl) * 2 * dim_;
  const std::size_t rbox = static_cast<std::size_t>(nr) * 2 * dim_;
  for (std::size_t d = 0; d < dim_; ++d) {
    s.boxes[box + d] = std::min(s.boxes[lbox + d], s.boxes[rbox + d]);
    s.boxes[box + dim_ + d] =
        std::max(s.boxes[lbox + dim_ + d], s.boxes[rbox + dim_ + d]);
  }
  return me;
}

std::int32_t KdTree::fold_copy(std::int32_t old_node, std::int64_t pos_delta,
                               FoldScratch& s) const {
  const Node& n = nodes_[static_cast<std::size_t>(old_node)];
  const auto me = static_cast<std::int32_t>(s.nodes.size());
  s.nodes.push_back(Node{
      static_cast<std::uint32_t>(static_cast<std::int64_t>(n.begin) +
                                 pos_delta),
      static_cast<std::uint32_t>(static_cast<std::int64_t>(n.end) + pos_delta),
      -1, -1, n.axis, n.split});
  const auto src =
      static_cast<std::ptrdiff_t>(static_cast<std::size_t>(old_node) * 2 *
                                  dim_);
  s.boxes.insert(s.boxes.end(), boxes_.begin() + src,
                 boxes_.begin() + src + static_cast<std::ptrdiff_t>(2 * dim_));
  if (n.axis >= 0) {
    const std::int32_t nl = fold_copy(n.left, pos_delta, s);
    const std::int32_t nr = fold_copy(n.right, pos_delta, s);
    s.nodes[static_cast<std::size_t>(me)].left = nl;
    s.nodes[static_cast<std::size_t>(me)].right = nr;
  }
  return me;
}

void KdTree::gather_adds(std::int32_t old_node, FoldScratch& s,
                         std::vector<std::int32_t>& out) const {
  if ((*s.add_count)[static_cast<std::size_t>(old_node)] == 0) return;
  const Node& n = nodes_[static_cast<std::size_t>(old_node)];
  if (n.axis < 0) {
    const std::vector<std::int32_t>& la =
        (*s.leaf_adds)[static_cast<std::size_t>(old_node)];
    out.insert(out.end(), la.begin(), la.end());
    return;
  }
  gather_adds(n.left, s, out);
  gather_adds(n.right, s, out);
}

std::size_t KdTree::resident_bytes() const {
  return ids_.capacity() * sizeof(std::int32_t) +
         nodes_.capacity() * sizeof(Node) +
         boxes_.capacity() * sizeof(double) +
         point_tag_.capacity() * sizeof(std::int32_t) +
         node_tag_.capacity() * sizeof(std::int32_t);
}

}  // namespace hfc
