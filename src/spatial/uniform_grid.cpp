#include "spatial/uniform_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/require.h"

namespace hfc {

namespace {

[[nodiscard]] inline bool hit_less(const SpatialHit& a, const SpatialHit& b) {
  if (a.dist != b.dist) return a.dist < b.dist;
  return a.id < b.id;
}

}  // namespace

UniformGrid::UniformGrid(const std::vector<Point>& coords,
                         std::vector<std::int32_t> ids)
    : coords_(&coords), ids_(std::move(ids)) {
  require(!coords.empty(), "UniformGrid: empty coordinate set");
  dim_ = coords.front().size();
  require(dim_ >= 1, "UniformGrid: zero-dimensional points");
  if (ids_.empty()) {
    ids_.reserve(coords.size());
    for (std::size_t i = 0; i < coords.size(); ++i) {
      ids_.push_back(static_cast<std::int32_t>(i));
    }
  }
  for (const std::int32_t id : ids_) {
    require(id >= 0 && static_cast<std::size_t>(id) < coords.size() &&
                coords[static_cast<std::size_t>(id)].size() == dim_,
            "UniformGrid: bad point id or dimension");
  }
  const std::size_t n = ids_.size();

  lo_.assign(dim_, 0.0);
  std::vector<double> hi(dim_, 0.0);
  for (std::size_t d = 0; d < dim_; ++d) {
    lo_[d] = hi[d] = (*coords_)[static_cast<std::size_t>(ids_[0])][d];
  }
  for (const std::int32_t id : ids_) {
    const Point& p = (*coords_)[static_cast<std::size_t>(id)];
    for (std::size_t d = 0; d < dim_; ++d) {
      lo_[d] = std::min(lo_[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }

  // ~n cells total: res per axis ≈ n^(1/dim), shrunk until res^dim fits
  // a 4n budget (and cannot overflow).
  res_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             std::pow(static_cast<double>(n), 1.0 / static_cast<double>(dim_)))));
  const std::size_t budget = std::max<std::size_t>(64, 4 * n);
  for (;;) {
    cells_ = 1;
    bool fits = true;
    for (std::size_t d = 0; d < dim_; ++d) {
      if (cells_ > budget / res_) {
        fits = false;
        break;
      }
      cells_ *= res_;
    }
    if (fits && cells_ <= budget) break;
    require(res_ > 1, "UniformGrid: cell budget exhausted");
    --res_;
  }

  width_.assign(dim_, 0.0);
  for (std::size_t d = 0; d < dim_; ++d) {
    width_[d] = (hi[d] - lo_[d]) / static_cast<double>(res_);
  }

  // CSR bucketing, ascending id inside each cell so leaf scans visit
  // candidates in the same order a brute ascending loop would.
  std::vector<std::pair<std::size_t, std::int32_t>> keyed;
  keyed.reserve(n);
  for (const std::int32_t id : ids_) {
    keyed.emplace_back(cell_of((*coords_)[static_cast<std::size_t>(id)]), id);
  }
  std::sort(keyed.begin(), keyed.end());
  cell_start_.assign(cells_ + 1, 0);
  for (const auto& [cell, id] : keyed) {
    ++cell_start_[cell + 1];
    (void)id;
  }
  for (std::size_t c = 0; c < cells_; ++c) cell_start_[c + 1] += cell_start_[c];
  for (std::size_t p = 0; p < n; ++p) ids_[p] = keyed[p].second;

  // Exact per-cell bounding boxes over member points (empty cells keep
  // the inverted sentinel and are never box-tested).
  cell_box_.assign(cells_ * 2 * dim_, 0.0);
  for (std::size_t c = 0; c < cells_; ++c) {
    const std::size_t box = c * 2 * dim_;
    for (std::size_t d = 0; d < dim_; ++d) {
      cell_box_[box + d] = std::numeric_limits<double>::infinity();
      cell_box_[box + dim_ + d] = -std::numeric_limits<double>::infinity();
    }
    for (std::uint32_t p = cell_start_[c]; p < cell_start_[c + 1]; ++p) {
      for (std::size_t d = 0; d < dim_; ++d) {
        cell_box_[box + d] = std::min(cell_box_[box + d], point(p)[d]);
        cell_box_[box + dim_ + d] =
            std::max(cell_box_[box + dim_ + d], point(p)[d]);
      }
    }
  }
}

std::size_t UniformGrid::axis_cell(double x, std::size_t d) const {
  if (width_[d] <= 0.0) return 0;
  const double v = (x - lo_[d]) / width_[d];
  if (v <= 0.0) return 0;
  const std::size_t i = static_cast<std::size_t>(v);
  return std::min(i, res_ - 1);
}

std::size_t UniformGrid::cell_of(const Point& p) const {
  std::size_t flat = 0;
  for (std::size_t d = 0; d < dim_; ++d) {
    flat = flat * res_ + axis_cell(p[d], d);
  }
  return flat;
}

double UniformGrid::cell_box_distance(std::size_t cell, const Point& q) const {
  const std::size_t box = cell * 2 * dim_;
  double sum = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    double excess = 0.0;
    if (q[d] < cell_box_[box + d]) {
      excess = cell_box_[box + d] - q[d];
    } else if (q[d] > cell_box_[box + dim_ + d]) {
      excess = q[d] - cell_box_[box + dim_ + d];
    }
    sum += excess * excess;
  }
  return std::sqrt(sum);
}

double UniformGrid::inflated_bound(const std::vector<std::int64_t>& idx,
                                   const Point& q) const {
  double sum = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    if (width_[d] <= 0.0) continue;  // degenerate axis: no lower bound
    const double blo =
        lo_[d] + static_cast<double>(idx[d] - 1) * width_[d];
    const double bhi =
        lo_[d] + static_cast<double>(idx[d] + 2) * width_[d];
    double excess = 0.0;
    if (q[d] < blo) {
      excess = blo - q[d];
    } else if (q[d] > bhi) {
      excess = q[d] - bhi;
    }
    sum += excess * excess;
  }
  return std::sqrt(sum);
}

template <typename Fn>
void UniformGrid::for_shell(const std::vector<std::int64_t>& center,
                            std::int64_t r, Fn&& fn) const {
  // Enumerate the surface |offset|_inf == r of the offset hypercube; the
  // last free axis is pinned to ±r unless an earlier axis already is.
  std::vector<std::int64_t> idx(dim_, 0);
  const std::int64_t hi = static_cast<std::int64_t>(res_) - 1;
  const auto recurse = [&](const auto& self, std::size_t d,
                           bool extreme) -> void {
    if (d == dim_) {
      std::size_t flat = 0;
      for (std::size_t i = 0; i < dim_; ++i) {
        flat = flat * res_ + static_cast<std::size_t>(idx[i]);
      }
      fn(flat, idx);
      return;
    }
    const bool last_chance = (d + 1 == dim_) && !extreme;
    for (std::int64_t o = -r; o <= r; ++o) {
      if (last_chance && o != -r && o != r) continue;
      const std::int64_t i = center[d] + o;
      if (i < 0 || i > hi) continue;
      idx[d] = i;
      self(self, d + 1, extreme || o == -r || o == r);
    }
  };
  recurse(recurse, 0, r == 0);
}

SpatialHit UniformGrid::shell_nearest(const Point& q,
                                      std::int32_t foreign_label, double bound,
                                      QueryStats& stats, SpatialFilter accept,
                                      const void* ctx) const {
  SpatialHit best;
  best.dist = bound;
  best.id = std::numeric_limits<std::int32_t>::max();

  std::vector<std::int64_t> center(dim_, 0);
  std::int64_t rmax = 0;
  for (std::size_t d = 0; d < dim_; ++d) {
    center[d] = static_cast<std::int64_t>(axis_cell(q[d], d));
    const std::int64_t hi = static_cast<std::int64_t>(res_) - 1;
    rmax = std::max({rmax, center[d], hi - center[d]});
  }
  for (std::int64_t r = 0; r <= rmax; ++r) {
    double shell_min = std::numeric_limits<double>::infinity();
    for_shell(center, r, [&](std::size_t cell,
                             const std::vector<std::int64_t>& idx) {
      ++stats.nodes_visited;
      shell_min = std::min(shell_min, inflated_bound(idx, q));
      if (cell_start_[cell] == cell_start_[cell + 1]) return;
      if (foreign_label != kAnyLabel && cell_tag_[cell] == foreign_label) {
        return;
      }
      if (cell_box_distance(cell, q) > best.dist) return;
      for (std::uint32_t p = cell_start_[cell]; p < cell_start_[cell + 1];
           ++p) {
        const std::int32_t id = ids_[p];
        if (foreign_label != kAnyLabel && point_tag_[p] == foreign_label) {
          continue;
        }
        if (accept != nullptr && !accept(id, ctx)) continue;
        ++stats.point_evals;
        const double d = euclidean(q, point(p));
        if (d < best.dist || (d == best.dist && id < best.id)) {
          best.dist = d;
          best.id = id;
        }
      }
    });
    if (shell_min > best.dist) break;
  }
  if (best.id == std::numeric_limits<std::int32_t>::max()) return SpatialHit{};
  return best;
}

SpatialHit UniformGrid::nearest(const Point& q, double bound,
                                QueryStats& stats, SpatialFilter accept,
                                const void* ctx) const {
  require(q.size() == dim_, "UniformGrid::nearest: dimension mismatch");
  return shell_nearest(q, kAnyLabel, bound, stats, accept, ctx);
}

SpatialHit UniformGrid::nearest_foreign(const Point& q, std::int32_t label,
                                        double bound,
                                        QueryStats& stats) const {
  require(q.size() == dim_, "UniformGrid::nearest_foreign: dimension mismatch");
  require(cell_tag_.size() == cells_,
          "UniformGrid::nearest_foreign: retag() has not been called");
  return shell_nearest(q, label, bound, stats, nullptr, nullptr);
}

std::vector<SpatialHit> UniformGrid::k_nearest(const Point& q, std::size_t k,
                                               QueryStats& stats,
                                               SpatialFilter accept,
                                               const void* ctx) const {
  require(q.size() == dim_, "UniformGrid::k_nearest: dimension mismatch");
  if (k == 0) return {};
  std::vector<SpatialHit> heap;
  heap.reserve(k);

  std::vector<std::int64_t> center(dim_, 0);
  std::int64_t rmax = 0;
  for (std::size_t d = 0; d < dim_; ++d) {
    center[d] = static_cast<std::int64_t>(axis_cell(q[d], d));
    const std::int64_t hi = static_cast<std::int64_t>(res_) - 1;
    rmax = std::max({rmax, center[d], hi - center[d]});
  }
  for (std::int64_t r = 0; r <= rmax; ++r) {
    double shell_min = std::numeric_limits<double>::infinity();
    for_shell(center, r, [&](std::size_t cell,
                             const std::vector<std::int64_t>& idx) {
      ++stats.nodes_visited;
      shell_min = std::min(shell_min, inflated_bound(idx, q));
      if (cell_start_[cell] == cell_start_[cell + 1]) return;
      if (heap.size() == k && cell_box_distance(cell, q) > heap.front().dist) {
        return;
      }
      for (std::uint32_t p = cell_start_[cell]; p < cell_start_[cell + 1];
           ++p) {
        const std::int32_t id = ids_[p];
        if (accept != nullptr && !accept(id, ctx)) continue;
        ++stats.point_evals;
        const SpatialHit cand{id, euclidean(q, point(p))};
        if (heap.size() < k) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end(), hit_less);
        } else if (hit_less(cand, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), hit_less);
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end(), hit_less);
        }
      }
    });
    if (heap.size() == k && shell_min > heap.front().dist) break;
  }
  std::sort(heap.begin(), heap.end(), hit_less);
  return heap;
}

std::vector<std::int32_t> UniformGrid::range(const Point& q, double radius,
                                             QueryStats& stats) const {
  require(q.size() == dim_, "UniformGrid::range: dimension mismatch");
  std::vector<std::int32_t> out;

  std::vector<std::int64_t> center(dim_, 0);
  std::int64_t rmax = 0;
  for (std::size_t d = 0; d < dim_; ++d) {
    center[d] = static_cast<std::int64_t>(axis_cell(q[d], d));
    const std::int64_t hi = static_cast<std::int64_t>(res_) - 1;
    rmax = std::max({rmax, center[d], hi - center[d]});
  }
  for (std::int64_t r = 0; r <= rmax; ++r) {
    double shell_min = std::numeric_limits<double>::infinity();
    for_shell(center, r, [&](std::size_t cell,
                             const std::vector<std::int64_t>& idx) {
      ++stats.nodes_visited;
      shell_min = std::min(shell_min, inflated_bound(idx, q));
      if (cell_start_[cell] == cell_start_[cell + 1]) return;
      if (cell_box_distance(cell, q) > radius) return;
      for (std::uint32_t p = cell_start_[cell]; p < cell_start_[cell + 1];
           ++p) {
        ++stats.point_evals;
        if (euclidean(q, point(p)) <= radius) out.push_back(ids_[p]);
      }
    });
    if (shell_min > radius) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

void UniformGrid::retag(const std::vector<std::int32_t>& labels) {
  point_tag_.resize(ids_.size());
  for (std::size_t p = 0; p < ids_.size(); ++p) {
    require(static_cast<std::size_t>(ids_[p]) < labels.size(),
            "UniformGrid::retag: labels too short");
    point_tag_[p] = labels[static_cast<std::size_t>(ids_[p])];
  }
  cell_tag_.assign(cells_, kMixedTag);
  for (std::size_t c = 0; c < cells_; ++c) {
    if (cell_start_[c] == cell_start_[c + 1]) continue;
    std::int32_t tag = point_tag_[cell_start_[c]];
    for (std::uint32_t p = cell_start_[c] + 1; p < cell_start_[c + 1]; ++p) {
      if (point_tag_[p] != tag) {
        tag = kMixedTag;
        break;
      }
    }
    cell_tag_[c] = tag;
  }
}

std::size_t UniformGrid::resident_bytes() const {
  return ids_.capacity() * sizeof(std::int32_t) +
         lo_.capacity() * sizeof(double) + width_.capacity() * sizeof(double) +
         cell_start_.capacity() * sizeof(std::uint32_t) +
         cell_box_.capacity() * sizeof(double) +
         point_tag_.capacity() * sizeof(std::int32_t) +
         cell_tag_.capacity() * sizeof(std::int32_t);
}

}  // namespace hfc
