#include "spatial/dynamic_set.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/require.h"

namespace hfc {

namespace {

/// SpatialFilter rejecting tombstoned ids; ctx is the dead set.
bool not_dead(std::int32_t id, const void* ctx) {
  const auto* dead = static_cast<const std::unordered_set<std::int32_t>*>(ctx);
  return dead->find(id) == dead->end();
}

}  // namespace

void DynamicSpatialSet::bulk_load(SpatialMode mode,
                                  const std::vector<Point>& coords,
                                  std::vector<std::int32_t> ids) {
  coords_ = &coords;
  labels_ = nullptr;
  mode_ = mode;
  std::sort(ids.begin(), ids.end());
  require(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
          "DynamicSpatialSet: duplicate ids");
  live_ = std::move(ids);
  index_.reset();
  indexed_count_ = 0;
  pending_.clear();
  dead_.clear();
  rebuild();
}

void DynamicSpatialSet::rebuild() {
  index_.reset();
  indexed_count_ = 0;
  pending_.clear();
  dead_.clear();
  if (mode_ == SpatialMode::kOff || live_.size() < kBruteThreshold) return;
  static obs::Counter& rebuilds =
      obs::MetricsRegistry::global().counter("spatial.set_rebuilds");
  rebuilds.add(1);
  index_ = make_spatial_index(mode_, *coords_, live_);
  indexed_count_ = live_.size();
}

void DynamicSpatialSet::insert(std::int32_t id) {
  const auto it = std::lower_bound(live_.begin(), live_.end(), id);
  require(it == live_.end() || *it != id, "DynamicSpatialSet: id already live");
  live_.insert(it, id);
  if (index_ == nullptr) return;
  if (dead_.erase(id) > 0) return;  // re-activation of an indexed point
  pending_.insert(std::lower_bound(pending_.begin(), pending_.end(), id), id);
}

void DynamicSpatialSet::erase(std::int32_t id) {
  const auto it = std::lower_bound(live_.begin(), live_.end(), id);
  require(it != live_.end() && *it == id, "DynamicSpatialSet: id not live");
  live_.erase(it);
  if (index_ == nullptr) return;
  const auto pit = std::lower_bound(pending_.begin(), pending_.end(), id);
  if (pit != pending_.end() && *pit == id) {
    pending_.erase(pit);
    return;
  }
  dead_.insert(id);
}

bool DynamicSpatialSet::contains(std::int32_t id) const {
  return std::binary_search(live_.begin(), live_.end(), id);
}

std::size_t DynamicSpatialSet::rebuild_budget(std::size_t indexed) {
  // HFC_SPATIAL_REBUILD_BUDGET >= 1 pins the budget; unset (or rejected
  // by the robust parser, which falls back to 0) keeps the adaptive rule.
  // Queries stay exact at any budget — the pending/tombstone overlay is
  // consulted on every lookup — so the knob only trades rebuild frequency
  // against per-query overlay size.
  const std::size_t knob = env_size_t("HFC_SPATIAL_REBUILD_BUDGET", 0, 1);
  if (knob > 0) return knob;
  return std::max<std::size_t>(32, indexed / 4);
}

void DynamicSpatialSet::maybe_rebuild() {
  if (mode_ == SpatialMode::kOff) return;
  if (index_ == nullptr) {
    if (live_.size() >= kBruteThreshold) rebuild();
    return;
  }
  if (pending_.size() + dead_.size() <= rebuild_budget(indexed_count_)) return;
  // Incremental path (HFC_SPATIAL_INCREMENTAL, default on): fold the
  // overlay into the index in place, rebuilding only the subtrees the
  // batch unbalances. Falls back to the full bulk reload when the index
  // kind does not support folding or the set shrank below the index
  // threshold. Either way the overlay empties, so queries afterwards are
  // pure index hits; both paths count as a spatial.set_rebuilds event
  // (the budget schedule is identical), folds additionally count
  // spatial.set_folds.
  if (env_size_t("HFC_SPATIAL_INCREMENTAL", 1, 0) != 0 &&
      live_.size() >= kBruteThreshold) {
    std::vector<std::int32_t> removes(dead_.begin(), dead_.end());
    std::sort(removes.begin(), removes.end());
    if (index_->fold_updates(pending_, removes)) {
      static obs::Counter& rebuilds =
          obs::MetricsRegistry::global().counter("spatial.set_rebuilds");
      static obs::Counter& folds =
          obs::MetricsRegistry::global().counter("spatial.set_folds");
      rebuilds.add(1);
      folds.add(1);
      indexed_count_ = live_.size();
      pending_.clear();
      dead_.clear();
      return;
    }
  }
  rebuild();
}

SpatialHit DynamicSpatialSet::nearest(const Point& q, double bound,
                                      QueryStats& stats) const {
  SpatialHit best;
  best.dist = bound;
  best.id = std::numeric_limits<std::int32_t>::max();
  if (index_ != nullptr) {
    const SpatialHit hit =
        index_->nearest(q, bound, stats, &not_dead, &dead_);
    if (hit.found()) best = hit;
    // Pending points are outside the index; scan them with the same rule.
    for (const std::int32_t id : pending_) {
      ++stats.point_evals;
      const double d = euclidean(q, (*coords_)[static_cast<std::size_t>(id)]);
      if (d < best.dist || (d == best.dist && id < best.id)) {
        best.dist = d;
        best.id = id;
      }
    }
  } else {
    for (const std::int32_t id : live_) {
      ++stats.point_evals;
      const double d = euclidean(q, (*coords_)[static_cast<std::size_t>(id)]);
      if (d < best.dist || (d == best.dist && id < best.id)) {
        best.dist = d;
        best.id = id;
      }
    }
  }
  if (best.id == std::numeric_limits<std::int32_t>::max()) return SpatialHit{};
  return best;
}

void DynamicSpatialSet::retag(const std::vector<std::int32_t>& labels) {
  require(pending_.empty() && dead_.empty(),
          "DynamicSpatialSet::retag: fold mutation buffers first");
  labels_ = &labels;
  if (index_ != nullptr) index_->retag(labels);
}

SpatialHit DynamicSpatialSet::nearest_foreign(const Point& q,
                                              std::int32_t label, double bound,
                                              QueryStats& stats) const {
  require(pending_.empty() && dead_.empty(),
          "DynamicSpatialSet::nearest_foreign: fold mutation buffers first");
  require(labels_ != nullptr, "DynamicSpatialSet::nearest_foreign: retag first");
  if (index_ != nullptr) return index_->nearest_foreign(q, label, bound, stats);
  SpatialHit best;
  best.dist = bound;
  best.id = std::numeric_limits<std::int32_t>::max();
  for (const std::int32_t id : live_) {
    if ((*labels_)[static_cast<std::size_t>(id)] == label) continue;
    ++stats.point_evals;
    const double d = euclidean(q, (*coords_)[static_cast<std::size_t>(id)]);
    if (d < best.dist || (d == best.dist && id < best.id)) {
      best.dist = d;
      best.id = id;
    }
  }
  if (best.id == std::numeric_limits<std::int32_t>::max()) return SpatialHit{};
  return best;
}

std::size_t DynamicSpatialSet::resident_bytes() const {
  std::size_t bytes = live_.capacity() * sizeof(std::int32_t) +
                      pending_.capacity() * sizeof(std::int32_t) +
                      dead_.size() * 2 * sizeof(std::int32_t*);
  if (index_ != nullptr) bytes += index_->resident_bytes();
  return bytes;
}

BcpResult bichromatic_closest_pair(const DynamicSpatialSet& a,
                                   const DynamicSpatialSet& b,
                                   const std::vector<Point>& coords,
                                   QueryStats& stats) {
  // Enumerate the smaller side against the larger side's index. The
  // per-query smallest-id tie-break plus the full (d, x, y) update below
  // make the answer independent of which side is enumerated.
  const bool enumerate_a = a.live_size() <= b.live_size();
  const DynamicSpatialSet& outer = enumerate_a ? a : b;
  const DynamicSpatialSet& inner = enumerate_a ? b : a;
  BcpResult best;
  for (const std::int32_t o : outer.live_ids()) {
    const SpatialHit hit =
        inner.nearest(coords[static_cast<std::size_t>(o)], best.dist, stats);
    if (!hit.found()) continue;
    const std::int32_t x = enumerate_a ? o : hit.id;
    const std::int32_t y = enumerate_a ? hit.id : o;
    if (hit.dist < best.dist ||
        (hit.dist == best.dist &&
         (x < best.x || (x == best.x && y < best.y)))) {
      best.dist = hit.dist;
      best.x = x;
      best.y = y;
    }
  }
  return best;
}

}  // namespace hfc
