// CSR-bucketed uniform grid over runtime-dimension points — the ablation
// counterpart to KdTree (DESIGN.md §11).
//
// Points are bucketed into ~n equal cells (per-axis resolution ≈
// n^(1/dim)); queries expand Chebyshev shells of cells outward from the
// query's cell. Two bounds keep the exactness contract:
//
//   * a non-empty cell is scanned unless the distance to its *exact*
//     point-derived bounding box (same accumulation as `euclidean()`)
//     strictly exceeds the current best — identical to a k-d tree leaf;
//   * the shell walk stops once the minimum distance to any cell of the
//     current shell — computed against the cell's geometric box inflated
//     by one full cell per side, which swamps any floating-point slack in
//     the bucketing division — exceeds the best. Every farther cell sits
//     "behind" some cell of the current shell (reduce its largest axis
//     offset step by step), so its bound can only be larger.
#pragma once

#include <cstdint>
#include <vector>

#include "spatial/spatial_index.h"

namespace hfc {

class UniformGrid final : public SpatialIndex {
 public:
  /// Index the points `ids` (empty = all) of `coords`, which must
  /// outlive the grid. Throws on empty input or inconsistent dimensions.
  UniformGrid(const std::vector<Point>& coords, std::vector<std::int32_t> ids);

  [[nodiscard]] std::size_t size() const override { return ids_.size(); }
  [[nodiscard]] SpatialHit nearest(const Point& q, double bound,
                                   QueryStats& stats, SpatialFilter accept,
                                   const void* ctx) const override;
  [[nodiscard]] std::vector<SpatialHit> k_nearest(
      const Point& q, std::size_t k, QueryStats& stats, SpatialFilter accept,
      const void* ctx) const override;
  [[nodiscard]] std::vector<std::int32_t> range(
      const Point& q, double radius, QueryStats& stats) const override;
  void retag(const std::vector<std::int32_t>& labels) override;
  [[nodiscard]] SpatialHit nearest_foreign(const Point& q, std::int32_t label,
                                           double bound,
                                           QueryStats& stats) const override;
  [[nodiscard]] std::size_t resident_bytes() const override;

 private:
  /// cell_tag_ value for cells spanning more than one component.
  static constexpr std::int32_t kMixedTag = -2;
  /// `label` sentinel for searches without component filtering.
  static constexpr std::int32_t kAnyLabel = INT32_MIN;

  [[nodiscard]] const Point& point(std::uint32_t pos) const {
    return (*coords_)[static_cast<std::size_t>(ids_[pos])];
  }
  /// Per-axis bucket index of a coordinate (clamped into the grid).
  [[nodiscard]] std::size_t axis_cell(double x, std::size_t d) const;
  /// Flattened (mixed-radix) cell index of a point.
  [[nodiscard]] std::size_t cell_of(const Point& p) const;
  /// Exact distance from q to the cell's point-derived bounding box.
  [[nodiscard]] double cell_box_distance(std::size_t cell,
                                         const Point& q) const;
  /// Conservative distance from q to the cell's geometric box inflated by
  /// one cell per side (the shell stop bound).
  [[nodiscard]] double inflated_bound(const std::vector<std::int64_t>& idx,
                                      const Point& q) const;
  /// Visit every in-grid cell at Chebyshev cell-offset exactly `r` from
  /// `center`, invoking fn(flat_cell, axis_indices).
  template <typename Fn>
  void for_shell(const std::vector<std::int64_t>& center, std::int64_t r,
                 Fn&& fn) const;
  /// Shared shell-walking core for nearest / nearest_foreign.
  [[nodiscard]] SpatialHit shell_nearest(const Point& q,
                                         std::int32_t foreign_label,
                                         double bound, QueryStats& stats,
                                         SpatialFilter accept,
                                         const void* ctx) const;

  const std::vector<Point>* coords_;
  std::size_t dim_ = 0;
  std::size_t res_ = 1;               ///< buckets per axis
  std::size_t cells_ = 1;             ///< res_^dim_
  std::vector<double> lo_;            ///< data bounding box, per axis
  std::vector<double> width_;         ///< cell width, per axis (may be 0)
  std::vector<std::int32_t> ids_;     ///< grouped by cell, ascending inside
  std::vector<std::uint32_t> cell_start_;  ///< CSR offsets, size cells_+1
  std::vector<double> cell_box_;      ///< per cell: dim_ lows, dim_ highs
  std::vector<std::int32_t> point_tag_;    ///< aligned with ids_
  std::vector<std::int32_t> cell_tag_;     ///< label or kMixedTag
};

}  // namespace hfc
