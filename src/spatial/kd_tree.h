// Bucketed k-d tree over runtime-dimension points (DESIGN.md §11).
//
// Build: recursive median split (nth_element under the total order
// (coordinate, id), so the partition — and therefore the whole tree
// shape — is deterministic even with duplicate coordinates) on the
// widest axis of each node's bounding box, into leaves of <= 16 points.
//
// Search correctness rests on exact bounding boxes, not on split planes:
// a subtree is pruned only when its box distance — accumulated in the
// same axis order and with the same operations as `euclidean()`, so the
// computed bound never exceeds the computed distance of any contained
// point — is strictly greater than the current best distance. Boxes at
// exactly the best distance are still visited, which is what preserves
// the smallest-id tie-break.
#pragma once

#include <cstdint>
#include <vector>

#include "spatial/spatial_index.h"

namespace hfc {

class KdTree final : public SpatialIndex {
 public:
  /// Index the points `ids` (empty = all) of `coords`, which must
  /// outlive the tree. Throws on empty input or inconsistent dimensions.
  KdTree(const std::vector<Point>& coords, std::vector<std::int32_t> ids);

  [[nodiscard]] std::size_t size() const override { return ids_.size(); }
  [[nodiscard]] SpatialHit nearest(const Point& q, double bound,
                                   QueryStats& stats, SpatialFilter accept,
                                   const void* ctx) const override;
  [[nodiscard]] std::vector<SpatialHit> k_nearest(
      const Point& q, std::size_t k, QueryStats& stats, SpatialFilter accept,
      const void* ctx) const override;
  [[nodiscard]] std::vector<std::int32_t> range(
      const Point& q, double radius, QueryStats& stats) const override;
  void retag(const std::vector<std::int32_t>& labels) override;
  [[nodiscard]] SpatialHit nearest_foreign(const Point& q, std::int32_t label,
                                           double bound,
                                           QueryStats& stats) const override;
  [[nodiscard]] std::size_t resident_bytes() const override;

 private:
  static constexpr std::uint32_t kLeafSize = 16;
  /// node_tag_ value for subtrees spanning more than one component.
  static constexpr std::int32_t kMixedTag = -2;
  /// `label` sentinel for searches without component filtering.
  static constexpr std::int32_t kAnyLabel = INT32_MIN;

  struct Node {
    std::uint32_t begin = 0;  ///< range into ids_ (subtree points)
    std::uint32_t end = 0;
    std::int32_t left = -1;   ///< children; -1 for leaves
    std::int32_t right = -1;
    std::int32_t axis = -1;   ///< traversal-order hint; -1 for leaves
    double split = 0.0;
  };

  [[nodiscard]] const Point& point(std::uint32_t pos) const {
    return (*coords_)[static_cast<std::size_t>(ids_[pos])];
  }
  [[nodiscard]] std::int32_t build(std::uint32_t begin, std::uint32_t end);
  /// Exact distance from q to node's bounding box (0 when inside).
  [[nodiscard]] double box_distance(std::int32_t node, const Point& q) const;
  void search(std::int32_t node, const Point& q, std::int32_t foreign_label,
              SpatialFilter accept, const void* ctx, SpatialHit& best,
              QueryStats& stats) const;
  [[nodiscard]] std::int32_t retag_node(
      std::int32_t node, const std::vector<std::int32_t>& labels);

  const std::vector<Point>* coords_;
  std::size_t dim_ = 0;
  std::vector<std::int32_t> ids_;    ///< permuted by the build
  std::vector<Node> nodes_;
  std::vector<double> boxes_;        ///< per node: dim_ lows, dim_ highs
  std::int32_t root_ = -1;
  std::vector<std::int32_t> point_tag_;  ///< aligned with ids_
  std::vector<std::int32_t> node_tag_;   ///< label or kMixedTag
};

}  // namespace hfc
