// Bucketed k-d tree over runtime-dimension points (DESIGN.md §11).
//
// Build: recursive median split (nth_element under the total order
// (coordinate, id), so the partition — and therefore the whole tree
// shape — is deterministic even with duplicate coordinates) on the
// widest axis of each node's bounding box, into leaves of <= 16 points.
//
// Search correctness rests on exact bounding boxes, not on split planes:
// a subtree is pruned only when its box distance — accumulated in the
// same axis order and with the same operations as `euclidean()`, so the
// computed bound never exceeds the computed distance of any contained
// point — is strictly greater than the current best distance. Boxes at
// exactly the best distance are still visited, which is what preserves
// the smallest-id tie-break.
//
// `fold_updates` (DESIGN.md §13) merges a mutation batch without a full
// rebuild: removed ids are located in one scan, added points are routed
// down the existing split planes, and an emit pass copies the tree into
// fresh arrays — untouched subtrees verbatim, touched subtrees kept when
// the change count stays within a scapegoat budget (max(16, size/4)) and
// rebuilt from their surviving points otherwise. Kept nodes keep their
// split planes and take the union of their children's boxes, so boxes
// always *contain* their subtree's points; containment (not tightness)
// is all the search correctness argument above needs — a loose box only
// costs pruning efficiency until a later rebuild tightens it.
#pragma once

#include <cstdint>
#include <vector>

#include "spatial/spatial_index.h"

namespace hfc {

class KdTree final : public SpatialIndex {
 public:
  /// Index the points `ids` (empty = all) of `coords`, which must
  /// outlive the tree. Throws on empty input or inconsistent dimensions.
  KdTree(const std::vector<Point>& coords, std::vector<std::int32_t> ids);

  [[nodiscard]] std::size_t size() const override { return ids_.size(); }
  [[nodiscard]] SpatialHit nearest(const Point& q, double bound,
                                   QueryStats& stats, SpatialFilter accept,
                                   const void* ctx) const override;
  [[nodiscard]] std::vector<SpatialHit> k_nearest(
      const Point& q, std::size_t k, QueryStats& stats, SpatialFilter accept,
      const void* ctx) const override;
  [[nodiscard]] std::vector<std::int32_t> range(
      const Point& q, double radius, QueryStats& stats) const override;
  void retag(const std::vector<std::int32_t>& labels) override;
  [[nodiscard]] SpatialHit nearest_foreign(const Point& q, std::int32_t label,
                                           double bound,
                                           QueryStats& stats) const override;
  [[nodiscard]] bool fold_updates(
      const std::vector<std::int32_t>& adds,
      const std::vector<std::int32_t>& removes) override;
  [[nodiscard]] std::size_t resident_bytes() const override;

 private:
  static constexpr std::uint32_t kLeafSize = 16;
  /// node_tag_ value for subtrees spanning more than one component.
  static constexpr std::int32_t kMixedTag = -2;
  /// `label` sentinel for searches without component filtering.
  static constexpr std::int32_t kAnyLabel = INT32_MIN;

  struct Node {
    std::uint32_t begin = 0;  ///< range into ids_ (subtree points)
    std::uint32_t end = 0;
    std::int32_t left = -1;   ///< children; -1 for leaves
    std::int32_t right = -1;
    std::int32_t axis = -1;   ///< traversal-order hint; -1 for leaves
    double split = 0.0;
  };

  [[nodiscard]] const Point& point(std::uint32_t pos) const {
    return (*coords_)[static_cast<std::size_t>(ids_[pos])];
  }
  /// Build a subtree over ids[begin, end) into the given arrays (which
  /// may be the members or the fold-emit scratch); returns the new node
  /// index. Only coords_/dim_ of *this are read.
  [[nodiscard]] std::int32_t build_range(std::vector<std::int32_t>& ids,
                                         std::vector<Node>& nodes,
                                         std::vector<double>& boxes,
                                         std::uint32_t begin,
                                         std::uint32_t end) const;
  /// fold_updates emit pass (see the header comment). `dead_prefix` is
  /// the prefix-count of tombstoned positions, `add_count`/`leaf_adds`
  /// the per-node routing of added ids.
  struct FoldScratch {
    const std::vector<std::uint32_t>* dead_prefix;
    const std::vector<std::uint32_t>* add_count;
    const std::vector<std::vector<std::int32_t>>* leaf_adds;
    std::vector<std::int32_t> ids;
    std::vector<Node> nodes;
    std::vector<double> boxes;
    std::uint64_t points_rebuilt = 0;
  };
  [[nodiscard]] std::int32_t fold_emit(std::int32_t old_node,
                                       FoldScratch& s) const;
  /// Copy an untouched subtree verbatim, shifting id positions by the
  /// subtree's new location.
  [[nodiscard]] std::int32_t fold_copy(std::int32_t old_node,
                                       std::int64_t pos_delta,
                                       FoldScratch& s) const;
  /// Append the ids of every add routed into `old_node`'s subtree.
  void gather_adds(std::int32_t old_node, FoldScratch& s,
                   std::vector<std::int32_t>& out) const;
  /// Exact distance from q to node's bounding box (0 when inside).
  [[nodiscard]] double box_distance(std::int32_t node, const Point& q) const;
  void search(std::int32_t node, const Point& q, std::int32_t foreign_label,
              SpatialFilter accept, const void* ctx, SpatialHit& best,
              QueryStats& stats) const;
  [[nodiscard]] std::int32_t retag_node(
      std::int32_t node, const std::vector<std::int32_t>& labels);

  const std::vector<Point>* coords_;
  std::size_t dim_ = 0;
  std::vector<std::int32_t> ids_;    ///< permuted by the build
  std::vector<Node> nodes_;
  std::vector<double> boxes_;        ///< per node: dim_ lows, dim_ highs
  std::int32_t root_ = -1;
  std::vector<std::int32_t> point_tag_;  ///< aligned with ids_
  std::vector<std::int32_t> node_tag_;   ///< label or kMixedTag
};

}  // namespace hfc
