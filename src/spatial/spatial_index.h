// Spatial indexing over GNP coordinates (DESIGN.md §11).
//
// Every structural phase of the pipeline — the Euclidean MST behind Zahn
// clustering (§3.2), closest-pair border selection (§3.3), and mesh
// neighbor choice — is a nearest-pair problem over the embedded
// coordinates. Scanning all O(n^2) candidate pairs was the scale wall
// past ~5k proxies; once nodes carry coordinates, all of these queries
// become near-logarithmic with a spatial index.
//
// Two interchangeable structures implement the same query contract:
//
//   KdTree      — bucketed k-d tree, median split on the widest axis,
//                 exact bounding-box pruning (the default);
//   UniformGrid — CSR-bucketed uniform grid, expanding-shell search
//                 (the ablation variant).
//
// Exactness contract: every query answers with the *same doubles and the
// same argmin* as the brute-force scan it replaces. Distances between
// candidate points are computed by the one inline `euclidean()` the brute
// paths call, pruning bounds are computed so that (in IEEE round-to-
// nearest, matching accumulation order) no candidate that could win is
// ever skipped, and ties in distance resolve to the smallest node id —
// exactly what an ascending strict-`<` scan keeps. Consumers therefore
// produce bit-identical MSTs, clusterings, and border pairs on either
// path; the A/B knob below exists for verification and ablation, not
// because the answers differ.
//
// Policy knobs:
//   HFC_SPATIAL       = off | kdtree | grid   (default kdtree)
//   HFC_SPATIAL_MIN_N = smallest point count that uses the index
//                       (default 256 — below it the brute scan is both
//                       exact and faster than building a tree; also keeps
//                       hand-laid-out unit-test point sets, which may
//                       contain exact distance ties, on the scan whose
//                       tie behaviour their expectations encode)
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "coords/point.h"

namespace hfc {

/// Which index structure the spatial consumers use (HFC_SPATIAL knob).
enum class SpatialMode { kOff, kKdTree, kGrid };

/// Resolve the HFC_SPATIAL environment knob (re-read on each call; the
/// consumers resolve it once per construction, never per query). Invalid
/// values warn once and fall back to kKdTree.
[[nodiscard]] SpatialMode spatial_mode();

/// Resolve HFC_SPATIAL_MIN_N (default 256, minimum 2).
[[nodiscard]] std::size_t spatial_min_n();

/// True when an operation over `n` points should use the index under the
/// current knobs.
[[nodiscard]] bool spatial_enabled(std::size_t n);

[[nodiscard]] const char* spatial_mode_name(SpatialMode mode);

/// One query answer: the winning point id and its exact euclidean()
/// distance. Ties in distance resolve to the smallest id.
struct SpatialHit {
  std::int32_t id = -1;
  double dist = std::numeric_limits<double>::infinity();
  [[nodiscard]] bool found() const { return id >= 0; }
};

/// Per-query traversal accounting, accumulated by the caller into the
/// obs registry (spatial.nodes_visited, and candidate-pair counters such
/// as topology.candidate_links). Kept caller-side so parallel sweeps add
/// exact per-task totals.
struct QueryStats {
  std::uint64_t nodes_visited = 0;  ///< tree nodes / grid cells examined
  std::uint64_t point_evals = 0;    ///< candidate distance evaluations

  QueryStats& operator+=(const QueryStats& o) {
    nodes_visited += o.nodes_visited;
    point_evals += o.point_evals;
    return *this;
  }
};

/// Candidate acceptance predicate over point ids (nullptr = accept all).
/// Must be pure for the duration of the query.
using SpatialFilter = bool (*)(std::int32_t, const void*);

/// An immutable spatial index over a subset of a coordinate array. The
/// coordinate vector must outlive the index; point ids are indices into
/// it (the subset form indexes only the listed ids, so cluster-scoped
/// indexes and whole-overlay indexes share one implementation).
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Number of indexed points.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Nearest indexed point to `q` with distance <= `bound` (candidates
  /// strictly beyond the bound may be pruned; candidates at exactly the
  /// bound are still returned so callers can finish lexicographic
  /// tie-breaks). `accept`/`ctx` optionally reject candidate ids.
  [[nodiscard]] virtual SpatialHit nearest(
      const Point& q, double bound, QueryStats& stats,
      SpatialFilter accept = nullptr, const void* ctx = nullptr) const = 0;

  /// The k indexed points minimising (distance, id) lexicographically,
  /// ascending — exactly the prefix a partial_sort of (distance, id)
  /// pairs produces. Fewer than k are returned when the (filtered) index
  /// is smaller.
  [[nodiscard]] virtual std::vector<SpatialHit> k_nearest(
      const Point& q, std::size_t k, QueryStats& stats,
      SpatialFilter accept = nullptr, const void* ctx = nullptr) const = 0;

  /// All indexed ids within `radius` of `q` (inclusive), ascending by id.
  [[nodiscard]] virtual std::vector<std::int32_t> range(
      const Point& q, double radius, QueryStats& stats) const = 0;

  /// Assign a component label to every *indexed* point (labels is indexed
  /// by point id) and cache per-subtree/per-cell homogeneity tags, so
  /// `nearest_foreign` can prune regions entirely inside the query's own
  /// component — the Borůvka MST accelerator. Not thread-safe with
  /// concurrent queries.
  virtual void retag(const std::vector<std::int32_t>& labels) = 0;

  /// Nearest indexed point whose label (from the last `retag`) differs
  /// from `label`, with the same bound/tie contract as `nearest`.
  [[nodiscard]] virtual SpatialHit nearest_foreign(
      const Point& q, std::int32_t label, double bound,
      QueryStats& stats) const = 0;

  /// Fold a batch of mutations into the index in place: `adds` become
  /// indexed points, `removes` (which must all be indexed) stop existing.
  /// Implementations that support it rebuild only the subtrees the batch
  /// actually unbalances (scapegoat-style; see kd_tree.h) and return
  /// true; the default returns false and the caller falls back to a full
  /// bulk reload. After a successful fold the index answers queries over
  /// exactly (indexed − removes) ∪ adds with the same exactness contract
  /// as a fresh build; any `retag` state is discarded and must be
  /// re-established before the next `nearest_foreign`. Not thread-safe
  /// with concurrent queries.
  [[nodiscard]] virtual bool fold_updates(
      const std::vector<std::int32_t>& adds,
      const std::vector<std::int32_t>& removes) {
    (void)adds;
    (void)removes;
    return false;
  }

  /// Bytes of index state currently resident (the bench memory-ceiling
  /// assertions bound this alongside the coordinate tier).
  [[nodiscard]] virtual std::size_t resident_bytes() const = 0;
};

/// Build an index of the requested kind over `ids` (empty = all points).
/// `mode` must not be kOff. The coordinate vector must outlive the index.
[[nodiscard]] std::unique_ptr<SpatialIndex> make_spatial_index(
    SpatialMode mode, const std::vector<Point>& coords,
    std::vector<std::int32_t> ids = {});

}  // namespace hfc
