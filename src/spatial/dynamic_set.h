// Churn-capable spatial set: a bulk-loaded immutable index plus small
// mutation buffers, rebuilt lazily on a budget (DESIGN.md §11).
//
// HfcTopology keeps one of these per live cluster and the dynamic overlay
// keeps one over the active set. Mutations (insert/erase) are O(log n)
// buffer updates; queries answer over (indexed − tombstoned) ∪ pending,
// so they are exact at every instant without rebuilding. `maybe_rebuild`
// folds the buffers back into the index once they exceed the rebuild
// budget — max(32, indexed/4), or the HFC_SPATIAL_REBUILD_BUDGET knob
// when set — callers invoke it only from serial mutation points, never
// concurrently with queries, so the parallel repair sweeps can fan out
// over `nearest` safely. With HFC_SPATIAL_INCREMENTAL (default on) the
// fold goes through SpatialIndex::fold_updates — scapegoat-style subtree
// rebuilds that touch only the unbalanced parts of the tree (DESIGN.md
// §13) — and falls back to the full bulk reload when the index kind does
// not support folding.
//
// Sets smaller than 32 points skip the index entirely: a brute scan of
// the sorted live list is both exact and faster than tree traversal.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "spatial/spatial_index.h"

namespace hfc {

class DynamicSpatialSet {
 public:
  /// Smallest set that carries an index at all.
  static constexpr std::size_t kBruteThreshold = 32;

  DynamicSpatialSet() = default;

  /// Reset to exactly `ids` over `coords` (which must outlive the set;
  /// it may grow — ids are re-read through it on every access). `mode`
  /// kOff forces the brute path regardless of size.
  void bulk_load(SpatialMode mode, const std::vector<Point>& coords,
                 std::vector<std::int32_t> ids);

  void insert(std::int32_t id);
  void erase(std::int32_t id);
  [[nodiscard]] bool contains(std::int32_t id) const;

  /// Fold mutation buffers into a fresh index when they exceed the
  /// rebuild budget. Serial mutation points only.
  void maybe_rebuild();

  /// The rebuild budget for a set of `indexed` points: the
  /// HFC_SPATIAL_REBUILD_BUDGET knob when set (>= 1), otherwise the
  /// adaptive max(32, indexed/4). Exact query results are independent of
  /// the budget — it only schedules when buffers fold back into the
  /// index (each fold bumps the spatial.set_rebuilds counter).
  [[nodiscard]] static std::size_t rebuild_budget(std::size_t indexed);

  /// Live ids, ascending.
  [[nodiscard]] const std::vector<std::int32_t>& live_ids() const {
    return live_;
  }
  [[nodiscard]] std::size_t live_size() const { return live_.size(); }

  /// Nearest live point to `q` within `bound` (inclusive), smallest id
  /// on distance ties — the same answer a strict-`<` ascending scan of
  /// the live ids produces.
  [[nodiscard]] SpatialHit nearest(const Point& q, double bound,
                                   QueryStats& stats) const;

  /// Attach component labels (indexed by point id, like
  /// SpatialIndex::retag) for `nearest_foreign` queries. Folded sets
  /// only — call from serial points with empty mutation buffers; the
  /// labels vector must outlive the queries it serves.
  void retag(const std::vector<std::int32_t>& labels);

  /// Nearest live point whose label differs from `label`, within `bound`
  /// (inclusive), smallest id on ties. Requires a preceding `retag` and a
  /// folded set. Below the brute threshold this is an exact ascending
  /// scan — the tier the group-local construction pipeline leans on for
  /// small partition cells (DESIGN.md §14).
  [[nodiscard]] SpatialHit nearest_foreign(const Point& q, std::int32_t label,
                                           double bound,
                                           QueryStats& stats) const;

  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  void rebuild();

  const std::vector<Point>* coords_ = nullptr;
  const std::vector<std::int32_t>* labels_ = nullptr;  ///< retag() target
  SpatialMode mode_ = SpatialMode::kOff;
  std::vector<std::int32_t> live_;     ///< sorted source of truth
  std::unique_ptr<SpatialIndex> index_;
  std::size_t indexed_count_ = 0;      ///< points in index_ at build time
  std::vector<std::int32_t> pending_;  ///< live but not indexed (sorted)
  std::unordered_set<std::int32_t> dead_;  ///< indexed but not live
};

/// Closest cross-set pair: the exact minimum of euclidean(coords[x],
/// coords[y]) over x ∈ a, y ∈ b, ties broken by smallest (x, y). The
/// smaller side is enumerated against the larger side's index; the
/// result is independent of which side that is. `stats` accumulates the
/// traversal work (point_evals is the candidate-pair count the obs
/// counters report).
struct BcpResult {
  std::int32_t x = -1;
  std::int32_t y = -1;
  double dist = std::numeric_limits<double>::infinity();
  [[nodiscard]] bool found() const { return x >= 0; }
};

[[nodiscard]] BcpResult bichromatic_closest_pair(const DynamicSpatialSet& a,
                                                 const DynamicSpatialSet& b,
                                                 const std::vector<Point>& coords,
                                                 QueryStats& stats);

}  // namespace hfc
