// The physical (underlay) network: routers joined by links with
// propagation delays. Overlay proxies, landmarks and clients attach to
// routers; all end-to-end "Internet distances" in the framework are delays
// of shortest paths through this graph.
#pragma once

#include <cstddef>
#include <vector>

#include "util/ids.h"
#include "util/require.h"

namespace hfc {

/// Role of a router within the transit-stub hierarchy. Only used for
/// inspection and attachment policies; routing treats all routers alike.
enum class RouterKind {
  kTransit,  ///< backbone router inside a transit domain
  kStub,     ///< router inside a stub (edge) domain
};

/// One directed half of an undirected link (stored per adjacency list).
struct LinkHalf {
  RouterId to;
  double delay_ms = 0.0;
};

/// An undirected link between two routers, as listed globally.
struct Link {
  RouterId a;
  RouterId b;
  double delay_ms = 0.0;
};

/// A weighted undirected graph of routers. Invariants: ids are dense,
/// delays are positive and symmetric, no self-loops, at most one link per
/// router pair (enforced by the generator, not re-checked per call).
class PhysicalNetwork {
 public:
  /// Add a router and return its id.
  RouterId add_router(RouterKind kind);

  /// Add an undirected link with a positive delay. Throws if either
  /// endpoint is out of range, the delay is non-positive, or a == b.
  void add_link(RouterId a, RouterId b, double delay_ms);

  [[nodiscard]] std::size_t router_count() const { return kinds_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] RouterKind kind(RouterId r) const {
    require(r.valid() && r.idx() < kinds_.size(),
            "PhysicalNetwork::kind: bad router id");
    return kinds_[r.idx()];
  }

  [[nodiscard]] const std::vector<LinkHalf>& neighbors(RouterId r) const {
    require(r.valid() && r.idx() < adjacency_.size(),
            "PhysicalNetwork::neighbors: bad router id");
    return adjacency_[r.idx()];
  }

  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// All routers of a given kind.
  [[nodiscard]] std::vector<RouterId> routers_of_kind(RouterKind kind) const;

  /// True if every router can reach every other router.
  [[nodiscard]] bool connected() const;

 private:
  std::vector<RouterKind> kinds_;
  std::vector<std::vector<LinkHalf>> adjacency_;
  std::vector<Link> links_;
};

}  // namespace hfc
