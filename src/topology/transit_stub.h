// Transit-stub Internet topology generator, after Zegura, Calvert and
// Bhattacharjee ("How to Model an Internetwork", INFOCOM 1996) — the model
// the paper uses (via GT-ITM) for all of its simulations.
//
// Structure: a connected random graph of transit *domains*; each transit
// domain is a connected random graph of transit routers; each transit
// router hosts a number of stub domains, each a connected random graph of
// stub routers joined to its transit router by an access link. Link delays
// are drawn per tier (inter-domain > intra-transit > access > intra-stub),
// which gives the underlay the hierarchical delay locality that makes
// proximity-based clustering meaningful.
#pragma once

#include <cstddef>
#include <cstdint>

#include "topology/physical_network.h"
#include "util/rng.h"

namespace hfc {

/// Parameters of the transit-stub generator. Defaults reproduce the scale
/// used in the paper's Table 1 when combined with `for_total_routers`.
struct TransitStubParams {
  std::size_t transit_domains = 3;
  std::size_t transit_routers_per_domain = 4;
  std::size_t stub_domains_per_transit = 3;
  std::size_t routers_per_stub = 8;

  /// Probability of an extra edge between each pair of transit domains
  /// (a spanning tree guarantees connectivity regardless).
  double extra_domain_edge_prob = 0.5;
  /// Extra edge probability inside a transit domain.
  double extra_transit_edge_prob = 0.6;
  /// Extra edge probability inside a stub domain.
  double extra_stub_edge_prob = 0.42;

  // Per-tier delay ranges in milliseconds.
  double inter_domain_delay_min = 20.0;
  double inter_domain_delay_max = 80.0;
  double intra_transit_delay_min = 5.0;
  double intra_transit_delay_max = 20.0;
  double access_delay_min = 2.0;
  double access_delay_max = 10.0;
  double intra_stub_delay_min = 1.0;
  double intra_stub_delay_max = 5.0;

  /// Total router count this parameterisation produces.
  [[nodiscard]] std::size_t total_routers() const {
    const std::size_t per_domain =
        transit_routers_per_domain *
        (1 + stub_domains_per_transit * routers_per_stub);
    return transit_domains * per_domain;
  }

  /// Scale the number of transit domains so the topology has (close to)
  /// `total` routers, keeping the per-domain shape fixed. Matches the
  /// paper's environments: 300, 600, 900, 1200 routers. Throws if `total`
  /// is smaller than one domain.
  [[nodiscard]] static TransitStubParams for_total_routers(std::size_t total);
};

/// Result of topology generation: the network plus domain bookkeeping that
/// attachment policies can use.
struct TransitStubTopology {
  PhysicalNetwork network;
  /// stub_domain_members[d] lists the routers of stub domain d.
  std::vector<std::vector<RouterId>> stub_domain_members;
  /// transit_domain_members[d] lists the transit routers of domain d.
  std::vector<std::vector<RouterId>> transit_domain_members;
};

/// Generate a connected transit-stub topology. Deterministic given (params,
/// rng seed). Throws std::invalid_argument on degenerate parameters.
[[nodiscard]] TransitStubTopology generate_transit_stub(
    const TransitStubParams& params, Rng& rng);

}  // namespace hfc
