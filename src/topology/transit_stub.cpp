#include "topology/transit_stub.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace hfc {

namespace {

/// Connect `members` into a random connected subgraph: a uniformly random
/// spanning tree (random attachment order) plus independent extra edges,
/// with per-edge delays drawn from [delay_min, delay_max).
void connect_group(PhysicalNetwork& net, const std::vector<RouterId>& members,
                   double extra_edge_prob, double delay_min, double delay_max,
                   Rng& rng) {
  if (members.size() < 2) return;
  std::vector<RouterId> order = members;
  rng.shuffle(order);
  // Random recursive tree: attach each node to a uniformly random earlier
  // node. Guarantees connectivity with n-1 edges.
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t parent = rng.pick_index(i);
    net.add_link(order[i], order[parent],
                 rng.uniform_real(delay_min, delay_max));
  }
  // Extra shortcut edges between not-yet-linked pairs.
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      // Skip the tree edge we may have just added: a duplicate parallel
      // link would not break routing but would inflate edge counts.
      bool linked = false;
      for (const LinkHalf& half : net.neighbors(order[i])) {
        if (half.to == order[j]) {
          linked = true;
          break;
        }
      }
      if (!linked && rng.chance(extra_edge_prob)) {
        net.add_link(order[i], order[j],
                     rng.uniform_real(delay_min, delay_max));
      }
    }
  }
}

}  // namespace

TransitStubParams TransitStubParams::for_total_routers(std::size_t total) {
  TransitStubParams p;
  const std::size_t per_domain =
      p.transit_routers_per_domain *
      (1 + p.stub_domains_per_transit * p.routers_per_stub);
  require(total >= per_domain,
          "TransitStubParams::for_total_routers: total smaller than one "
          "transit domain");
  p.transit_domains = total / per_domain;
  return p;
}

TransitStubTopology generate_transit_stub(const TransitStubParams& params,
                                          Rng& rng) {
  require(params.transit_domains > 0, "transit_stub: need >= 1 domain");
  require(params.transit_routers_per_domain > 0,
          "transit_stub: need >= 1 transit router per domain");
  require(params.routers_per_stub > 0,
          "transit_stub: need >= 1 router per stub");
  require(params.inter_domain_delay_min > 0.0 &&
              params.intra_transit_delay_min > 0.0 &&
              params.access_delay_min > 0.0 &&
              params.intra_stub_delay_min > 0.0,
          "transit_stub: delays must be positive");

  TransitStubTopology topo;
  PhysicalNetwork& net = topo.network;

  // 1. Create transit routers, grouped by domain, and wire each domain.
  topo.transit_domain_members.resize(params.transit_domains);
  for (std::size_t d = 0; d < params.transit_domains; ++d) {
    for (std::size_t t = 0; t < params.transit_routers_per_domain; ++t) {
      topo.transit_domain_members[d].push_back(
          net.add_router(RouterKind::kTransit));
    }
    connect_group(net, topo.transit_domain_members[d],
                  params.extra_transit_edge_prob,
                  params.intra_transit_delay_min,
                  params.intra_transit_delay_max, rng);
  }

  // 2. Wire the transit domains together: spanning tree over domains (one
  //    link between random routers of the two domains) plus extras.
  for (std::size_t d = 1; d < params.transit_domains; ++d) {
    const std::size_t other = rng.pick_index(d);
    net.add_link(rng.pick(topo.transit_domain_members[d]),
                 rng.pick(topo.transit_domain_members[other]),
                 rng.uniform_real(params.inter_domain_delay_min,
                                  params.inter_domain_delay_max));
  }
  for (std::size_t a = 0; a + 1 < params.transit_domains; ++a) {
    for (std::size_t b = a + 1; b < params.transit_domains; ++b) {
      if (rng.chance(params.extra_domain_edge_prob)) {
        net.add_link(rng.pick(topo.transit_domain_members[a]),
                     rng.pick(topo.transit_domain_members[b]),
                     rng.uniform_real(params.inter_domain_delay_min,
                                      params.inter_domain_delay_max));
      }
    }
  }

  // 3. Hang stub domains off every transit router.
  for (std::size_t d = 0; d < params.transit_domains; ++d) {
    for (RouterId transit : topo.transit_domain_members[d]) {
      for (std::size_t s = 0; s < params.stub_domains_per_transit; ++s) {
        std::vector<RouterId> stub;
        stub.reserve(params.routers_per_stub);
        for (std::size_t r = 0; r < params.routers_per_stub; ++r) {
          stub.push_back(net.add_router(RouterKind::kStub));
        }
        connect_group(net, stub, params.extra_stub_edge_prob,
                      params.intra_stub_delay_min,
                      params.intra_stub_delay_max, rng);
        // Access link from a random stub router up to the transit router.
        net.add_link(rng.pick(stub), transit,
                     rng.uniform_real(params.access_delay_min,
                                      params.access_delay_max));
        topo.stub_domain_members.push_back(std::move(stub));
      }
    }
  }

  ensure(net.connected(), "transit_stub: generated network is disconnected");
  return topo;
}

}  // namespace hfc
