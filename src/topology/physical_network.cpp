#include "topology/physical_network.h"

#include <cstdint>

namespace hfc {

RouterId PhysicalNetwork::add_router(RouterKind kind) {
  kinds_.push_back(kind);
  adjacency_.emplace_back();
  return RouterId(static_cast<std::int32_t>(kinds_.size() - 1));
}

void PhysicalNetwork::add_link(RouterId a, RouterId b, double delay_ms) {
  require(a.valid() && a.idx() < kinds_.size(),
          "PhysicalNetwork::add_link: bad router id a");
  require(b.valid() && b.idx() < kinds_.size(),
          "PhysicalNetwork::add_link: bad router id b");
  require(a != b, "PhysicalNetwork::add_link: self-loop");
  require(delay_ms > 0.0, "PhysicalNetwork::add_link: non-positive delay");
  adjacency_[a.idx()].push_back(LinkHalf{b, delay_ms});
  adjacency_[b.idx()].push_back(LinkHalf{a, delay_ms});
  links_.push_back(Link{a, b, delay_ms});
}

std::vector<RouterId> PhysicalNetwork::routers_of_kind(RouterKind kind) const {
  std::vector<RouterId> out;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == kind) out.push_back(RouterId(static_cast<int>(i)));
  }
  return out;
}

bool PhysicalNetwork::connected() const {
  if (kinds_.empty()) return true;
  std::vector<bool> seen(kinds_.size(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (const LinkHalf& half : adjacency_[u]) {
      const std::size_t v = half.to.idx();
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == kinds_.size();
}

}  // namespace hfc
