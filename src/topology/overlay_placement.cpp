#include "topology/overlay_placement.h"

#include <algorithm>

namespace hfc {

OverlayPlacement place_overlay(const TransitStubTopology& topo,
                               const PlacementParams& params, Rng& rng) {
  const std::vector<RouterId> stubs =
      topo.network.routers_of_kind(RouterKind::kStub);
  require(params.proxies > 0, "place_overlay: need >= 1 proxy");
  require(stubs.size() >= params.proxies,
          "place_overlay: more proxies than stub routers");
  require(topo.stub_domain_members.size() >= params.landmarks,
          "place_overlay: more landmarks than stub domains");

  OverlayPlacement placement;

  // Proxies: distinct random stub routers.
  const std::vector<std::size_t> proxy_picks =
      rng.sample_indices(stubs.size(), params.proxies);
  placement.proxy_routers.reserve(params.proxies);
  for (std::size_t idx : proxy_picks) {
    placement.proxy_routers.push_back(stubs[idx]);
  }

  // Landmarks: one per distinct stub domain, domains sampled uniformly.
  const std::vector<std::size_t> domain_picks =
      rng.sample_indices(topo.stub_domain_members.size(), params.landmarks);
  placement.landmark_routers.reserve(params.landmarks);
  for (std::size_t d : domain_picks) {
    placement.landmark_routers.push_back(
        rng.pick(topo.stub_domain_members[d]));
  }

  // Clients: random stub routers, repeats allowed (several clients can sit
  // behind the same access router).
  placement.client_routers.reserve(params.clients);
  for (std::size_t c = 0; c < params.clients; ++c) {
    placement.client_routers.push_back(rng.pick(stubs));
  }
  return placement;
}

}  // namespace hfc
