// Attachment of overlay entities (proxies, landmarks, clients) to routers
// of the physical network.
//
// Proxies live at the edge (stub routers), as service proxies do in the
// paper's deployment model; landmarks are spread across distinct stub
// domains so the coordinate embedding sees well-separated reference
// points; clients attach to random stub routers.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/transit_stub.h"
#include "util/rng.h"

namespace hfc {

/// Router attachments chosen for one experiment.
struct OverlayPlacement {
  std::vector<RouterId> proxy_routers;     ///< one per overlay proxy
  std::vector<RouterId> landmark_routers;  ///< one per landmark
  std::vector<RouterId> client_routers;    ///< one per client endpoint
};

/// Placement sizing.
struct PlacementParams {
  std::size_t proxies = 250;
  std::size_t landmarks = 10;
  std::size_t clients = 40;
};

/// Pick attachment routers. Proxies and clients attach to uniformly random
/// stub routers (distinct routers for proxies so that no two proxies are at
/// zero distance); landmarks are placed in distinct stub domains spread
/// round-robin over the domain list. Throws if the topology has too few
/// stub routers or stub domains.
[[nodiscard]] OverlayPlacement place_overlay(const TransitStubTopology& topo,
                                             const PlacementParams& params,
                                             Rng& rng);

}  // namespace hfc
