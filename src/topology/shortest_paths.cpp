#include "topology/shortest_paths.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace hfc {

ShortestPathTree dijkstra(const PhysicalNetwork& net, RouterId source) {
  require(source.valid() && source.idx() < net.router_count(),
          "dijkstra: bad source");
  const std::size_t n = net.router_count();
  ShortestPathTree tree;
  tree.source = source;
  tree.delay_ms.assign(n, std::numeric_limits<double>::infinity());
  tree.predecessor.assign(n, RouterId{});
  tree.delay_ms[source.idx()] = 0.0;

  using Entry = std::pair<double, std::size_t>;  // (delay, router)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source.idx());
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.delay_ms[u]) continue;  // stale entry
    for (const LinkHalf& half : net.neighbors(RouterId(static_cast<int>(u)))) {
      const std::size_t v = half.to.idx();
      const double nd = d + half.delay_ms;
      if (nd < tree.delay_ms[v]) {
        tree.delay_ms[v] = nd;
        tree.predecessor[v] = RouterId(static_cast<int>(u));
        heap.emplace(nd, v);
      }
    }
  }
  return tree;
}

std::vector<RouterId> extract_path(const ShortestPathTree& tree,
                                   RouterId target) {
  require(target.valid() && target.idx() < tree.delay_ms.size(),
          "extract_path: bad target");
  if (tree.delay_ms[target.idx()] ==
      std::numeric_limits<double>::infinity()) {
    return {};
  }
  std::vector<RouterId> path;
  for (RouterId r = target; r != tree.source; r = tree.predecessor[r.idx()]) {
    path.push_back(r);
  }
  path.push_back(tree.source);
  std::reverse(path.begin(), path.end());
  return path;
}

SymMatrix<double> pairwise_delays(const PhysicalNetwork& net,
                                  const std::vector<RouterId>& subset) {
  SymMatrix<double> out(subset.size(), 0.0);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    const ShortestPathTree tree = dijkstra(net, subset[i]);
    for (std::size_t j = 0; j <= i; ++j) {
      out.at(i, j) = tree.delay_ms[subset[j].idx()];
    }
  }
  return out;
}

LatencyOracle::LatencyOracle(const PhysicalNetwork& net,
                             std::vector<RouterId> endpoints, double noise,
                             Rng rng)
    : truth_(pairwise_delays(net, endpoints)), noise_(noise),
      rng_(std::move(rng)) {
  require(noise >= 0.0, "LatencyOracle: negative noise");
}

double LatencyOracle::measure(std::size_t i, std::size_t j) {
  ++probe_count_;
  const double base = truth_.at(i, j);
  if (noise_ == 0.0) return base;
  return base * (1.0 + rng_.uniform_real(0.0, noise_));
}

double LatencyOracle::measure_min_of(std::size_t i, std::size_t j,
                                     std::size_t probes) {
  require(probes >= 1, "LatencyOracle::measure_min_of: need >= 1 probe");
  double best = measure(i, j);
  for (std::size_t p = 1; p < probes; ++p) {
    best = std::min(best, measure(i, j));
  }
  return best;
}

}  // namespace hfc
