#include "topology/shortest_paths.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <queue>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace hfc {

ShortestPathTree dijkstra(const PhysicalNetwork& net, RouterId source) {
  require(source.valid() && source.idx() < net.router_count(),
          "dijkstra: bad source");
  const std::size_t n = net.router_count();
  ShortestPathTree tree;
  tree.source = source;
  tree.delay_ms.assign(n, std::numeric_limits<double>::infinity());
  tree.predecessor.assign(n, RouterId{});
  tree.delay_ms[source.idx()] = 0.0;

  using Entry = std::pair<double, std::size_t>;  // (delay, router)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source.idx());
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.delay_ms[u]) continue;  // stale entry
    for (const LinkHalf& half : net.neighbors(RouterId(static_cast<int>(u)))) {
      const std::size_t v = half.to.idx();
      const double nd = d + half.delay_ms;
      if (nd < tree.delay_ms[v]) {
        tree.delay_ms[v] = nd;
        tree.predecessor[v] = RouterId(static_cast<int>(u));
        heap.emplace(nd, v);
      }
    }
  }
  return tree;
}

std::vector<RouterId> extract_path(const ShortestPathTree& tree,
                                   RouterId target) {
  require(target.valid() && target.idx() < tree.delay_ms.size(),
          "extract_path: bad target");
  if (tree.delay_ms[target.idx()] ==
      std::numeric_limits<double>::infinity()) {
    return {};
  }
  std::vector<RouterId> path;
  for (RouterId r = target; r != tree.source; r = tree.predecessor[r.idx()]) {
    path.push_back(r);
  }
  path.push_back(tree.source);
  std::reverse(path.begin(), path.end());
  return path;
}

SymMatrix<double> pairwise_delays(const PhysicalNetwork& net,
                                  const std::vector<RouterId>& subset) {
  HFC_TRACE_SPAN("dijkstra.pairwise");
  const auto wall_start = std::chrono::steady_clock::now();
  static obs::Counter& sources =
      obs::MetricsRegistry::global().counter("dijkstra.sources");
  SymMatrix<double> out(subset.size(), 0.0);
  // One Dijkstra per source; source i writes only row i of the packed
  // triangle, so the fan-out parallelises with no synchronisation and
  // the result is identical for any thread count.
  parallel_for(subset.size(), 1, [&](std::size_t i) {
    sources.add(1);
    const ShortestPathTree tree = dijkstra(net, subset[i]);
    for (std::size_t j = 0; j <= i; ++j) {
      out.at(i, j) = tree.delay_ms[subset[j].idx()];
    }
  });
  obs::MetricsRegistry::global()
      .histogram("dijkstra.pairwise_ms",
                 {1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 30000.0})
      .observe(std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count());
  return out;
}

}  // namespace hfc
