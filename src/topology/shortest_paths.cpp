#include "topology/shortest_paths.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <queue>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace hfc {

ShortestPathTree dijkstra(const PhysicalNetwork& net, RouterId source) {
  require(source.valid() && source.idx() < net.router_count(),
          "dijkstra: bad source");
  const std::size_t n = net.router_count();
  ShortestPathTree tree;
  tree.source = source;
  tree.delay_ms.assign(n, std::numeric_limits<double>::infinity());
  tree.predecessor.assign(n, RouterId{});
  tree.delay_ms[source.idx()] = 0.0;

  using Entry = std::pair<double, std::size_t>;  // (delay, router)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source.idx());
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.delay_ms[u]) continue;  // stale entry
    for (const LinkHalf& half : net.neighbors(RouterId(static_cast<int>(u)))) {
      const std::size_t v = half.to.idx();
      const double nd = d + half.delay_ms;
      if (nd < tree.delay_ms[v]) {
        tree.delay_ms[v] = nd;
        tree.predecessor[v] = RouterId(static_cast<int>(u));
        heap.emplace(nd, v);
      }
    }
  }
  return tree;
}

std::vector<RouterId> extract_path(const ShortestPathTree& tree,
                                   RouterId target) {
  require(target.valid() && target.idx() < tree.delay_ms.size(),
          "extract_path: bad target");
  if (tree.delay_ms[target.idx()] ==
      std::numeric_limits<double>::infinity()) {
    return {};
  }
  std::vector<RouterId> path;
  for (RouterId r = target; r != tree.source; r = tree.predecessor[r.idx()]) {
    path.push_back(r);
  }
  path.push_back(tree.source);
  std::reverse(path.begin(), path.end());
  return path;
}

SymMatrix<double> pairwise_delays(const PhysicalNetwork& net,
                                  const std::vector<RouterId>& subset) {
  HFC_TRACE_SPAN("dijkstra.pairwise");
  const auto wall_start = std::chrono::steady_clock::now();
  static obs::Counter& sources =
      obs::MetricsRegistry::global().counter("dijkstra.sources");
  SymMatrix<double> out(subset.size(), 0.0);
  // One Dijkstra per source; source i writes only row i of the packed
  // triangle, so the fan-out parallelises with no synchronisation and
  // the result is identical for any thread count.
  parallel_for(subset.size(), 1, [&](std::size_t i) {
    sources.add(1);
    const ShortestPathTree tree = dijkstra(net, subset[i]);
    for (std::size_t j = 0; j <= i; ++j) {
      out.at(i, j) = tree.delay_ms[subset[j].idx()];
    }
  });
  obs::MetricsRegistry::global()
      .histogram("dijkstra.pairwise_ms",
                 {1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 30000.0})
      .observe(std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count());
  return out;
}

LatencyOracle::LatencyOracle(const PhysicalNetwork& net,
                             std::vector<RouterId> endpoints, double noise,
                             Rng rng)
    : truth_(pairwise_delays(net, endpoints)), noise_(noise),
      noise_seed_(rng.seed()) {
  require(noise >= 0.0, "LatencyOracle: negative noise");
  const std::size_t pairs = truth_.size() * (truth_.size() + 1) / 2;
  pair_probes_ = std::make_unique<std::atomic<std::uint64_t>[]>(pairs);
  for (std::size_t p = 0; p < pairs; ++p) pair_probes_[p] = 0;
}

double LatencyOracle::probe_noise_factor(std::size_t i, std::size_t j,
                                         std::uint64_t probe_idx) const {
  // Counter-based noise: each probe's inflation is a pure function of
  // (seed, unordered pair, probe index), so measurements are reproducible
  // no matter which thread measures which pair in which order.
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(i, j));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(i, j));
  std::uint64_t h = splitmix64(noise_seed_ ^ 0xa24baed4963ee407ULL);
  h = splitmix64(h ^ (hi << 32 | lo));
  h = splitmix64(h ^ probe_idx);
  // 53 high bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 1.0 + noise_ * u;
}

double LatencyOracle::measure(std::size_t i, std::size_t j) {
  static obs::Counter& probes =
      obs::MetricsRegistry::global().counter("oracle.probes");
  probes.add(1);
  probe_count_.fetch_add(1, std::memory_order_relaxed);
  const double base = truth_.at(i, j);
  if (noise_ == 0.0) return base;
  const std::size_t slot = i >= j ? i * (i + 1) / 2 + j : j * (j + 1) / 2 + i;
  const std::uint64_t probe_idx =
      pair_probes_[slot].fetch_add(1, std::memory_order_relaxed);
  return base * probe_noise_factor(i, j, probe_idx);
}

double LatencyOracle::measure_min_of(std::size_t i, std::size_t j,
                                     std::size_t probes) {
  require(probes >= 1, "LatencyOracle::measure_min_of: need >= 1 probe");
  double best = measure(i, j);
  for (std::size_t p = 1; p < probes; ++p) {
    best = std::min(best, measure(i, j));
  }
  return best;
}

}  // namespace hfc
