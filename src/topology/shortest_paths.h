// Shortest delay paths through the physical network (Dijkstra), and the
// end-to-end "measurement" layer built on top of them.
//
// In the paper, Internet distances are round-trip delays measured between
// hosts; here the ground truth is the delay of the shortest path through
// the generated underlay. `LatencyOracle` adds the paper's measurement
// discipline on top (multiplicative noise per probe, minimum of R probes,
// §3.1) so the coordinate-embedding stage sees realistic, noisy inputs
// while experiments can still query exact ground truth.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "topology/physical_network.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sym_matrix.h"

namespace hfc {

/// Single-source shortest path result.
struct ShortestPathTree {
  RouterId source;
  /// delay_ms[r] = shortest delay from source to router r (infinity if
  /// unreachable).
  std::vector<double> delay_ms;
  /// predecessor[r] = previous router on a shortest path (invalid for the
  /// source and unreachable routers).
  std::vector<RouterId> predecessor;
};

/// Dijkstra from `source` over positive link delays.
[[nodiscard]] ShortestPathTree dijkstra(const PhysicalNetwork& net,
                                        RouterId source);

/// Reconstruct the router sequence source..target from a tree; empty if
/// the target is unreachable.
[[nodiscard]] std::vector<RouterId> extract_path(const ShortestPathTree& tree,
                                                 RouterId target);

/// All-pairs shortest delays restricted to a subset of routers (one
/// Dijkstra per subset member). Entry (i, j) is the delay between
/// subset[i] and subset[j].
[[nodiscard]] SymMatrix<double> pairwise_delays(
    const PhysicalNetwork& net, const std::vector<RouterId>& subset);

/// End-to-end latency measurement between attachment routers.
///
/// `measure` models one application-level RTT probe: the true shortest
/// delay inflated by multiplicative noise, never below the true value
/// (queueing only adds delay). `measure_min_of` takes the minimum over
/// several probes, the paper's §3.1 noise-reduction discipline.
///
/// Safe for concurrent measurement: probe accounting is atomic, and each
/// probe's noise is a pure function of (seed, endpoint pair, per-pair
/// probe index) rather than a draw from shared mutable RNG state, so a
/// parallel measurement schedule yields the same values as a serial one
/// as long as each pair is measured by a single task (the construction
/// paths measure disjoint pairs per task).
class LatencyOracle {
 public:
  /// `noise` is the maximum relative inflation per probe (0.2 = up to
  /// +20%). Zero noise makes measurements exact.
  LatencyOracle(const PhysicalNetwork& net, std::vector<RouterId> endpoints,
                double noise, Rng rng);

  [[nodiscard]] std::size_t endpoint_count() const { return truth_.size(); }

  /// Ground-truth delay between endpoints i and j.
  [[nodiscard]] double true_delay(std::size_t i, std::size_t j) const {
    return truth_.at(i, j);
  }

  /// One noisy probe.
  [[nodiscard]] double measure(std::size_t i, std::size_t j);

  /// Minimum of `probes` >= 1 noisy probes.
  [[nodiscard]] double measure_min_of(std::size_t i, std::size_t j,
                                      std::size_t probes);

  /// Number of probes issued so far (for measurement-cost accounting).
  [[nodiscard]] std::size_t probe_count() const {
    return probe_count_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] double probe_noise_factor(std::size_t i, std::size_t j,
                                          std::uint64_t probe_idx) const;

  SymMatrix<double> truth_;
  double noise_;
  std::uint64_t noise_seed_;
  std::atomic<std::size_t> probe_count_{0};
  /// Per-unordered-pair probe counters (packed lower triangle), so each
  /// probe of a pair gets a fresh deterministic noise draw.
  std::unique_ptr<std::atomic<std::uint64_t>[]> pair_probes_;
};

}  // namespace hfc
