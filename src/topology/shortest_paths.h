// Shortest delay paths through the physical network (Dijkstra).
//
// The end-to-end "measurement" layer built on top of them — noisy probes
// and lazily derived ground truth — lives in src/distance/ (see
// `LatencyOracle` and `TruthDistanceService`).
#pragma once

#include <vector>

#include "topology/physical_network.h"
#include "util/ids.h"
#include "util/sym_matrix.h"

namespace hfc {

/// Single-source shortest path result.
struct ShortestPathTree {
  RouterId source;
  /// delay_ms[r] = shortest delay from source to router r (infinity if
  /// unreachable).
  std::vector<double> delay_ms;
  /// predecessor[r] = previous router on a shortest path (invalid for the
  /// source and unreachable routers).
  std::vector<RouterId> predecessor;
};

/// Dijkstra from `source` over positive link delays.
[[nodiscard]] ShortestPathTree dijkstra(const PhysicalNetwork& net,
                                        RouterId source);

/// Reconstruct the router sequence source..target from a tree; empty if
/// the target is unreachable.
[[nodiscard]] std::vector<RouterId> extract_path(const ShortestPathTree& tree,
                                                 RouterId target);

/// All-pairs shortest delays restricted to a subset of routers (one
/// Dijkstra per subset member). Entry (i, j) is the delay between
/// subset[i] and subset[j].
///
/// This materializes the full O(|subset|^2) matrix; production paths use
/// the lazily derived `TruthDistanceService` (src/distance/) instead, and
/// this adapter remains for tests and small evaluation sweeps that want
/// the whole truth map at once.
[[nodiscard]] SymMatrix<double> pairwise_delays(
    const PhysicalNetwork& net, const std::vector<RouterId>& subset);

}  // namespace hfc
